"""Transition-formula syntax.

A *transition formula* (§3) is a first-order formula over the program
variables ``Var`` and their primed copies ``Var'`` (plus auxiliary symbols).
This module provides the formula AST used throughout the analysis:

* :class:`Atom` — a polynomial inequation/equation ``p <= 0``, ``p < 0`` or
  ``p = 0``;
* :class:`And` / :class:`Or` — finite conjunction / disjunction;
* :class:`Exists` — existential quantification over auxiliary symbols;
* :data:`TRUE` / :data:`FALSE` — the trivial formulas.

Negation is not a constructor; :func:`negate` pushes negations down to atoms
(over the integers ``not (p <= 0)`` becomes ``-p + 1 <= 0``, i.e. ``p >= 1``;
over the rationals it becomes the strict atom ``-p < 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from .polynomial import Polynomial, as_polynomial
from .symbols import Symbol

__all__ = [
    "AtomKind",
    "Formula",
    "Atom",
    "And",
    "Or",
    "Exists",
    "TrueFormula",
    "FalseFormula",
    "TRUE",
    "FALSE",
    "conjoin",
    "disjoin",
    "exists",
    "negate",
    "atom_le",
    "atom_lt",
    "atom_eq",
    "atom_ge",
    "atom_gt",
    "free_symbols",
    "substitute",
    "rename",
    "map_atoms",
    "formula_size",
]


class AtomKind(enum.Enum):
    """Relation of an atom's polynomial to zero."""

    LE = "<="   # p <= 0
    LT = "<"    # p < 0
    EQ = "=="   # p == 0


class Formula:
    """Base class of all formula nodes (value objects)."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return conjoin([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disjoin([self, other])


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula ``true``."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The formula ``false``."""

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic constraint ``polynomial kind 0``."""

    polynomial: Polynomial
    kind: AtomKind

    def __str__(self) -> str:
        return f"{self.polynomial} {self.kind.value} 0"

    @property
    def is_linear(self) -> bool:
        return self.polynomial.is_linear


@dataclass(frozen=True)
class And(Formula):
    """Finite conjunction."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " /\\ ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Finite disjunction."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " \\/ ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over a tuple of symbols."""

    symbols: tuple[Symbol, ...]
    body: Formula

    def __str__(self) -> str:
        quantified = ", ".join(str(s) for s in self.symbols)
        return f"(exists {quantified}. {self.body})"


# ---------------------------------------------------------------------- #
# Smart constructors
# ---------------------------------------------------------------------- #
def atom_le(lhs, rhs=0) -> Formula:
    """The atom ``lhs <= rhs`` (normalized to ``lhs - rhs <= 0``)."""
    poly = as_polynomial(lhs) - as_polynomial(rhs)
    return _normalize_atom(poly, AtomKind.LE)


def atom_lt(lhs, rhs=0) -> Formula:
    """The atom ``lhs < rhs``."""
    poly = as_polynomial(lhs) - as_polynomial(rhs)
    return _normalize_atom(poly, AtomKind.LT)


def atom_ge(lhs, rhs=0) -> Formula:
    """The atom ``lhs >= rhs`` (i.e. ``rhs - lhs <= 0``)."""
    return atom_le(rhs, lhs)


def atom_gt(lhs, rhs=0) -> Formula:
    """The atom ``lhs > rhs``."""
    return atom_lt(rhs, lhs)


def atom_eq(lhs, rhs=0) -> Formula:
    """The atom ``lhs == rhs``."""
    poly = as_polynomial(lhs) - as_polynomial(rhs)
    return _normalize_atom(poly, AtomKind.EQ)


def _normalize_atom(poly: Polynomial, kind: AtomKind) -> Formula:
    """Evaluate constant atoms to TRUE/FALSE; otherwise build the Atom."""
    if poly.is_constant:
        value = poly.constant_value
        if kind is AtomKind.LE:
            return TRUE if value <= 0 else FALSE
        if kind is AtomKind.LT:
            return TRUE if value < 0 else FALSE
        return TRUE if value == 0 else FALSE
    return Atom(poly, kind)


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction with flattening and TRUE/FALSE simplification."""
    flattened: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, FalseFormula):
            return FALSE
        if isinstance(formula, TrueFormula):
            continue
        if isinstance(formula, And):
            flattened.extend(formula.children)
        else:
            flattened.append(formula)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction with flattening and TRUE/FALSE simplification."""
    flattened: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, TrueFormula):
            return TRUE
        if isinstance(formula, FalseFormula):
            continue
        if isinstance(formula, Or):
            flattened.extend(formula.children)
        else:
            flattened.append(formula)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return Or(tuple(flattened))


def exists(symbols: Sequence[Symbol], body: Formula) -> Formula:
    """Existential quantification, flattening nested quantifiers."""
    symbols = tuple(symbols)
    if not symbols:
        return body
    if isinstance(body, (TrueFormula, FalseFormula)):
        return body
    if isinstance(body, Exists):
        return Exists(tuple(dict.fromkeys(body.symbols + symbols)), body.body)
    relevant = tuple(s for s in dict.fromkeys(symbols) if s in free_symbols(body))
    if not relevant:
        return body
    return Exists(relevant, body)


# ---------------------------------------------------------------------- #
# Negation
# ---------------------------------------------------------------------- #
def negate(formula: Formula, integer_semantics: bool = True) -> Formula:
    """Negation-normal form negation of ``formula``.

    With ``integer_semantics`` (the default) the negation of ``p <= 0`` is the
    non-strict atom ``p >= 1``; over the rationals it is the strict ``p > 0``.
    Existentially quantified formulas cannot be negated exactly (that would
    require universal quantification); negating one raises ``ValueError`` so
    callers are forced to eliminate quantifiers first.
    """
    if isinstance(formula, TrueFormula):
        return FALSE
    if isinstance(formula, FalseFormula):
        return TRUE
    if isinstance(formula, Atom):
        poly = formula.polynomial
        if formula.kind is AtomKind.LE:
            if integer_semantics:
                return atom_le(Polynomial.constant(1) - poly)  # p >= 1
            return _normalize_atom(-poly, AtomKind.LT)  # p > 0
        if formula.kind is AtomKind.LT:
            return _normalize_atom(-poly, AtomKind.LE)  # p >= 0
        # not (p == 0)  ==  p < 0 \/ p > 0
        if integer_semantics:
            return disjoin(
                [atom_le(poly + 1), atom_le(Polynomial.constant(1) - poly)]
            )
        return disjoin(
            [_normalize_atom(poly, AtomKind.LT), _normalize_atom(-poly, AtomKind.LT)]
        )
    if isinstance(formula, And):
        return disjoin([negate(c, integer_semantics) for c in formula.children])
    if isinstance(formula, Or):
        return conjoin([negate(c, integer_semantics) for c in formula.children])
    if isinstance(formula, Exists):
        raise ValueError("cannot negate an existentially quantified formula exactly")
    raise TypeError(f"unknown formula node {formula!r}")


# ---------------------------------------------------------------------- #
# Traversals
# ---------------------------------------------------------------------- #
def free_symbols(formula: Formula) -> frozenset[Symbol]:
    """The free symbols of ``formula``."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return frozenset()
    if isinstance(formula, Atom):
        return formula.polynomial.symbols
    if isinstance(formula, (And, Or)):
        out: set[Symbol] = set()
        for child in formula.children:
            out |= free_symbols(child)
        return frozenset(out)
    if isinstance(formula, Exists):
        return free_symbols(formula.body) - set(formula.symbols)
    raise TypeError(f"unknown formula node {formula!r}")


def map_atoms(formula: Formula, fn: Callable[[Atom], Formula]) -> Formula:
    """Rebuild ``formula`` with each atom replaced by ``fn(atom)``."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        return fn(formula)
    if isinstance(formula, And):
        return conjoin([map_atoms(c, fn) for c in formula.children])
    if isinstance(formula, Or):
        return disjoin([map_atoms(c, fn) for c in formula.children])
    if isinstance(formula, Exists):
        return exists(formula.symbols, map_atoms(formula.body, fn))
    raise TypeError(f"unknown formula node {formula!r}")


def substitute(formula: Formula, mapping: Mapping[Symbol, Polynomial]) -> Formula:
    """Substitute polynomials for free symbols (capture-avoiding).

    Quantified symbols are never substituted; if a quantified symbol collides
    with a symbol of a substituted polynomial the quantified occurrence is
    untouched (callers use globally fresh symbols for quantifiers, so capture
    does not arise in practice, but we guard against it defensively).
    """
    if not mapping:
        return formula
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        return _normalize_atom(formula.polynomial.substitute(mapping), formula.kind)
    if isinstance(formula, And):
        return conjoin([substitute(c, mapping) for c in formula.children])
    if isinstance(formula, Or):
        return disjoin([substitute(c, mapping) for c in formula.children])
    if isinstance(formula, Exists):
        bound = set(formula.symbols)
        inner = {s: p for s, p in mapping.items() if s not in bound}
        return exists(formula.symbols, substitute(formula.body, inner))
    raise TypeError(f"unknown formula node {formula!r}")


def rename(formula: Formula, mapping: Mapping[Symbol, Symbol]) -> Formula:
    """Rename free symbols according to ``mapping``."""
    return substitute(formula, {s: Polynomial.var(t) for s, t in mapping.items()})


def formula_size(formula: Formula) -> int:
    """Number of nodes in the formula (used for blow-up guards and tests)."""
    if isinstance(formula, (TrueFormula, FalseFormula, Atom)):
        return 1
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(c) for c in formula.children)
    if isinstance(formula, Exists):
        return 1 + formula_size(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")
