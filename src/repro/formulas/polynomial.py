"""Polynomials over :class:`~repro.formulas.symbols.Symbol` with rational coefficients.

The paper's *relational expressions* (§3) are polynomials over ``Var ∪ Var'``
with rational coefficients; candidate terms ``τ_k``, the atoms of transition
formulas, and the inequations produced by symbolic abstraction are all
represented with the :class:`Polynomial` class defined here.

Representation
--------------
A :class:`Monomial` is a product of symbol powers (the empty monomial is the
constant ``1``).  A :class:`Polynomial` is a finite map from monomials to
non-zero :class:`fractions.Fraction` coefficients.  All operations are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Union

from .symbols import Symbol

__all__ = ["Monomial", "Polynomial", "Coefficient", "as_polynomial"]

Coefficient = Union[int, Fraction]


@dataclass(frozen=True)
class Monomial:
    """A product of symbol powers, e.g. ``x^2 * y``.

    Stored as a sorted tuple of ``(symbol, power)`` pairs with positive
    integer powers.  The empty tuple is the unit monomial (the constant 1).
    """

    powers: tuple[tuple[Symbol, int], ...] = ()

    @staticmethod
    def unit() -> "Monomial":
        """The constant monomial ``1``."""
        return Monomial(())

    @staticmethod
    def of(symbol: Symbol, power: int = 1) -> "Monomial":
        """The monomial ``symbol**power``."""
        if power < 0:
            raise ValueError("monomial powers must be non-negative")
        if power == 0:
            return Monomial.unit()
        return Monomial(((symbol, power),))

    @staticmethod
    def from_mapping(mapping: Mapping[Symbol, int]) -> "Monomial":
        items = tuple(sorted((s, p) for s, p in mapping.items() if p > 0))
        for _, power in items:
            if power < 0:
                raise ValueError("monomial powers must be non-negative")
        return Monomial(items)

    @property
    def is_unit(self) -> bool:
        return not self.powers

    @property
    def degree(self) -> int:
        """Total degree of the monomial."""
        return sum(p for _, p in self.powers)

    @property
    def symbols(self) -> frozenset[Symbol]:
        return frozenset(s for s, _ in self.powers)

    def power_of(self, symbol: Symbol) -> int:
        for s, p in self.powers:
            if s == symbol:
                return p
        return 0

    def __mul__(self, other: "Monomial") -> "Monomial":
        merged: dict[Symbol, int] = {}
        for s, p in self.powers:
            merged[s] = merged.get(s, 0) + p
        for s, p in other.powers:
            merged[s] = merged.get(s, 0) + p
        return Monomial.from_mapping(merged)

    def __str__(self) -> str:
        if self.is_unit:
            return "1"
        parts = []
        for s, p in self.powers:
            parts.append(str(s) if p == 1 else f"{s}^{p}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({self!s})"


class Polynomial:
    """A polynomial over symbols with exact rational coefficients.

    Polynomials are immutable value objects: arithmetic returns new instances
    and equality/hash are structural.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Coefficient] | None = None):
        cleaned: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                frac = Fraction(coeff)
                if frac != 0:
                    cleaned[mono] = cleaned.get(mono, Fraction(0)) + frac
                    if cleaned[mono] == 0:
                        del cleaned[mono]
        self._terms: dict[Monomial, Fraction] = cleaned

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def constant(value: Coefficient) -> "Polynomial":
        return Polynomial({Monomial.unit(): Fraction(value)})

    @staticmethod
    def var(symbol: Symbol) -> "Polynomial":
        return Polynomial({Monomial.of(symbol): Fraction(1)})

    @staticmethod
    def monomial(mono: Monomial, coeff: Coefficient = 1) -> "Polynomial":
        return Polynomial({mono: Fraction(coeff)})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def terms(self) -> Mapping[Monomial, Fraction]:
        """Read-only view of the monomial -> coefficient map."""
        return dict(self._terms)

    def items(self) -> Iterator[tuple[Monomial, Fraction]]:
        return iter(self._terms.items())

    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def is_constant(self) -> bool:
        return all(m.is_unit for m in self._terms)

    @property
    def constant_value(self) -> Fraction:
        """The coefficient of the unit monomial."""
        return self._terms.get(Monomial.unit(), Fraction(0))

    @property
    def degree(self) -> int:
        if self.is_zero:
            return 0
        return max(m.degree for m in self._terms)

    @property
    def is_linear(self) -> bool:
        """True when every monomial has degree at most one."""
        return all(m.degree <= 1 for m in self._terms)

    @property
    def symbols(self) -> frozenset[Symbol]:
        out: set[Symbol] = set()
        for m in self._terms:
            out |= m.symbols
        return frozenset(out)

    def coefficient(self, mono: Monomial) -> Fraction:
        return self._terms.get(mono, Fraction(0))

    def coefficient_of_symbol(self, symbol: Symbol) -> Fraction:
        """Coefficient of the degree-1 monomial of ``symbol`` (linear part)."""
        return self._terms.get(Monomial.of(symbol), Fraction(0))

    def linear_coefficients(self) -> dict[Symbol, Fraction]:
        """Map from symbols to their degree-1 coefficients."""
        out: dict[Symbol, Fraction] = {}
        for mono, coeff in self._terms.items():
            if mono.degree == 1:
                ((s, _),) = mono.powers
                out[s] = coeff
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Polynomial | Coefficient") -> "Polynomial":
        other = as_polynomial(other)
        merged = dict(self._terms)
        for mono, coeff in other._terms.items():
            merged[mono] = merged.get(mono, Fraction(0)) + coeff
        return Polynomial(merged)

    def __radd__(self, other: Coefficient) -> "Polynomial":
        return self.__add__(other)

    def __sub__(self, other: "Polynomial | Coefficient") -> "Polynomial":
        return self + (-as_polynomial(other))

    def __rsub__(self, other: Coefficient) -> "Polynomial":
        return as_polynomial(other) - self

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __mul__(self, other: "Polynomial | Coefficient") -> "Polynomial":
        other = as_polynomial(other)
        result: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                mono = m1 * m2
                result[mono] = result.get(mono, Fraction(0)) + c1 * c2
        return Polynomial(result)

    def __rmul__(self, other: Coefficient) -> "Polynomial":
        return self.__mul__(other)

    def scale(self, factor: Coefficient) -> "Polynomial":
        factor = Fraction(factor)
        return Polynomial({m: c * factor for m, c in self._terms.items()})

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("polynomial powers must be non-negative")
        result = Polynomial.constant(1)
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # ------------------------------------------------------------------ #
    # Substitution and evaluation
    # ------------------------------------------------------------------ #
    def substitute(self, mapping: Mapping[Symbol, "Polynomial"]) -> "Polynomial":
        """Simultaneously substitute polynomials for symbols."""
        if not mapping:
            return self
        result = Polynomial.zero()
        for mono, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for symbol, power in mono.powers:
                replacement = mapping.get(symbol)
                if replacement is None:
                    replacement = Polynomial.var(symbol)
                term = term * (replacement ** power)
            result = result + term
        return result

    def rename(self, mapping: Mapping[Symbol, Symbol]) -> "Polynomial":
        """Rename symbols according to ``mapping``."""
        return self.substitute({s: Polynomial.var(t) for s, t in mapping.items()})

    def evaluate(self, assignment: Mapping[Symbol, Coefficient]) -> Fraction:
        """Evaluate the polynomial at a total assignment of its symbols."""
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            value = Fraction(coeff)
            for symbol, power in mono.powers:
                if symbol not in assignment:
                    raise KeyError(f"no value for symbol {symbol}")
                value *= Fraction(assignment[symbol]) ** power
            total += value
        return total

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def split_linear(self) -> tuple[dict[Symbol, Fraction], Fraction, "Polynomial"]:
        """Split into (linear coefficients, constant, non-linear remainder)."""
        linear: dict[Symbol, Fraction] = {}
        constant = Fraction(0)
        nonlinear: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            if mono.is_unit:
                constant += coeff
            elif mono.degree == 1:
                ((s, _),) = mono.powers
                linear[s] = linear.get(s, Fraction(0)) + coeff
            else:
                nonlinear[mono] = coeff
        return linear, constant, Polynomial(nonlinear)

    def nonlinear_monomials(self) -> list[Monomial]:
        """The monomials of degree two or more appearing in the polynomial."""
        return [m for m in self._terms if m.degree >= 2]

    # ------------------------------------------------------------------ #
    # Comparison / rendering
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        parts: list[str] = []
        for mono, coeff in sorted(self._terms.items(), key=lambda kv: str(kv[0])):
            if mono.is_unit:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(str(mono))
            elif coeff == -1:
                parts.append(f"-{mono}")
            else:
                parts.append(f"{coeff}*{mono}")
        rendered = " + ".join(parts)
        return rendered.replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Polynomial({self!s})"


def as_polynomial(value: "Polynomial | Symbol | Coefficient") -> Polynomial:
    """Coerce an int, Fraction, or Symbol into a :class:`Polynomial`."""
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, Symbol):
        return Polynomial.var(value)
    if isinstance(value, (int, Fraction)):
        return Polynomial.constant(value)
    raise TypeError(f"cannot interpret {value!r} as a polynomial")
