"""The SV-COMP ``recursive`` assertion benchmarks used in Figure 3.

The paper selects the 17 benchmarks of the SV-COMP *ReachSafety-Recursive*
``recursive`` sub-directory that contain true assertions and runs CHORA,
ICRA, Ultimate Automizer, UTaipan and VIAP on them (Fig. 3 is the cactus
plot of proved-count vs. time; CHORA proves 8/17 about an order of magnitude
faster than the others).

The benchmarks are re-written here in the mini-language, preserving their
recursion structure and assertions.  The counts the paper reports per tool
are recorded as reference data so that the Fig. 3 harness can print the same
series even though the external tools cannot be run offline (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SvcompBenchmark", "SVCOMP_RECURSIVE_BENCHMARKS", "PAPER_FIG3_PROVED_COUNTS"]


@dataclass(frozen=True)
class SvcompBenchmark:
    """One SV-COMP-style recursive benchmark with a true assertion."""

    name: str
    source: str
    #: whether the reproduction's CHORA is expected to prove it (used by tests
    #: as a regression marker, not as a claim about the original tool)
    expected_chora: bool
    #: whether plain bounded unrolling suffices (the paper notes many of the
    #: SV-COMP recursive tasks need no invariant generation at all)
    provable_by_unrolling: bool


#: Number of benchmarks proved by each tool in the paper's Fig. 3 run.
PAPER_FIG3_PROVED_COUNTS = {
    "CHORA": 8,
    "ICRA": 11,
    "UA": 12,
    "UTaipan": 10,
    "VIAP": 10,
}


SVCOMP_RECURSIVE_BENCHMARKS: tuple[SvcompBenchmark, ...] = (
    SvcompBenchmark(
        "Ackermann01",
        """
int ackermann(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ackermann(m - 1, 1); }
    return ackermann(m - 1, ackermann(m, n - 1));
}
int main(int m, int n) {
    assume(m >= 0);
    assume(n >= 0);
    int result = ackermann(m, n);
    assert(result >= 0);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "Addition01",
        """
int addition(int m, int n) {
    if (n == 0) { return m; }
    if (n > 0) { return addition(m + 1, n - 1); }
    return addition(m - 1, n + 1);
}
int main(int m, int n) {
    assume(m >= 0);
    assume(n >= 0);
    int result = addition(m, n);
    assert(result == m + n);
    return result;
}
""",
        False,
        False,
    ),
    SvcompBenchmark(
        "Fibonacci01",
        """
int fibonacci(int n) {
    if (n < 1) { return 0; }
    if (n == 1) { return 1; }
    return fibonacci(n - 1) + fibonacci(n - 2);
}
int main(int n) {
    assume(n >= 0);
    int result = fibonacci(n);
    assert(result >= 0);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "Fibonacci02",
        """
int fibonacci(int n) {
    if (n < 1) { return 0; }
    if (n == 1) { return 1; }
    return fibonacci(n - 1) + fibonacci(n - 2);
}
int main() {
    int result = fibonacci(9);
    assert(result == 34);
    return result;
}
""",
        False,
        True,
    ),
    SvcompBenchmark(
        "Fibonacci04",
        """
int fibonacci(int n) {
    if (n < 1) { return 0; }
    if (n == 1) { return 1; }
    return fibonacci(n - 1) + fibonacci(n - 2);
}
int main(int n) {
    assume(n >= 8);
    int result = fibonacci(n);
    assert(result >= n);
    return result;
}
""",
        False,
        False,
    ),
    SvcompBenchmark(
        "McCarthy91",
        """
int f91(int x) {
    if (x > 100) { return x - 10; }
    return f91(f91(x + 11));
}
int main(int x) {
    int result = f91(x);
    assert(result == 91 || (x > 101 && result == x - 10));
    return result;
}
""",
        False,
        False,
    ),
    SvcompBenchmark(
        "MultCommutative",
        """
int mult(int n, int m) {
    if (m < 0) { return mult(n, m + 1) - n; }
    if (m == 0) { return 0; }
    return mult(n, m - 1) + n;
}
int main(int n, int m) {
    assume(n >= 0);
    assume(m >= 0);
    int a = mult(n, m);
    assert(a >= 0);
    return a;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "EvenOdd01",
        """
int isOdd(int n) {
    if (n == 0) { return 0; }
    if (n == 1) { return 1; }
    return isEven(n - 1);
}
int isEven(int n) {
    if (n == 0) { return 1; }
    if (n == 1) { return 0; }
    return isOdd(n - 1);
}
int main(int n) {
    assume(n >= 0);
    int result = isOdd(n);
    assert(result >= 0);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "Primes01",
        """
int mult(int n, int m) {
    if (m < 0) { return mult(n, m + 1) - n; }
    if (m == 0) { return 0; }
    if (n < 0) { return -mult(-n, m); }
    return mult(n, m - 1) + n;
}
int main(int n, int m) {
    assume(n > 0);
    assume(m > 0);
    int result = mult(n, m);
    assert(result >= 0);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "RecHanoi01",
        """
int counter;
int hanoi(int n) {
    if (n == 1) { return 1; }
    return 2 * hanoi(n - 1) + 1;
}
void applyHanoi(int n, int from, int to, int via) {
    if (n == 0) { return; }
    counter++;
    applyHanoi(n - 1, from, via, to);
    applyHanoi(n - 1, via, to, from);
}
int main(int n) {
    assume(n >= 1);
    counter = 0;
    applyHanoi(n, 1, 3, 2);
    int result = hanoi(n);
    assert(result == counter);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "RecHanoi02",
        """
int counter;
void applyHanoi(int n, int from, int to, int via) {
    if (n == 0) { return; }
    counter++;
    applyHanoi(n - 1, from, via, to);
    applyHanoi(n - 1, via, to, from);
}
int main(int n) {
    assume(n >= 1);
    counter = 0;
    applyHanoi(n, 1, 3, 2);
    assert(counter >= 1);
    return counter;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "RecHanoi03",
        """
int hanoi(int n) {
    if (n == 1) { return 1; }
    return 2 * hanoi(n - 1) + 1;
}
int main(int n) {
    assume(n >= 1);
    int result = hanoi(n);
    assert(result >= n);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "Sum01",
        """
int sum(int n, int m) {
    if (n <= 0) { return m; }
    return sum(n - 1, m + 1);
}
int main(int n) {
    assume(n >= 0);
    int result = sum(n, 0);
    assert(result == n);
    return result;
}
""",
        False,
        False,
    ),
    SvcompBenchmark(
        "Sum02",
        """
int sum(int n, int m) {
    if (n <= 0) { return m; }
    return sum(n - 1, m + n);
}
int main(int n) {
    assume(n >= 0);
    int result = sum(n, 0);
    assert(result >= 0);
    return result;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "Sum03",
        """
int sum(int n) {
    if (n <= 0) { return 0; }
    return sum(n - 1) + n;
}
int main() {
    int result = sum(10);
    assert(result == 55);
    return result;
}
""",
        False,
        True,
    ),
    SvcompBenchmark(
        "gcd01",
        """
int gcd(int y1, int y2) {
    if (y1 <= 0 || y2 <= 0) { return 0; }
    if (y1 == y2) { return y1; }
    if (y1 > y2) { return gcd(y1 - y2, y2); }
    return gcd(y1, y2 - y1);
}
int main(int m, int n) {
    assume(m > 0);
    assume(n > 0);
    int z = gcd(m, n);
    assert(z >= 0);
    return z;
}
""",
        True,
        False,
    ),
    SvcompBenchmark(
        "recursive_loop",
        """
int rec(int d) {
    if (d > 5) { return d; }
    int x = rec(d + 1);
    return x;
}
int main() {
    int result = rec(1);
    assert(result == 6);
    return result;
}
""",
        False,
        True,
    ),
)
