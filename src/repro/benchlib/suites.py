"""A uniform iteration protocol over the paper's benchmark suites.

Every evaluation artefact of the paper — the Table-1 complexity rows, the 17
Figure-3 SV-COMP programs, the Table-2 assertion benchmarks — is exposed here
as a :class:`Suite` of :class:`SuiteEntry` records with a single shape, so
that the batch engine, the ``repro`` CLI, the bench scripts and the examples
all select and execute benchmarks the same way instead of each keeping its
own fast/slow lists.

An entry's ``kind`` names the analysis to run on it (``"complexity"`` for
cost-bound extraction, ``"assertion"`` for assertion checking); entries whose
analysis takes minutes in this pure-Python reproduction are flagged ``slow``
and only included when full-bench mode is requested (the
``REPRO_FULL_BENCH=1`` switch, see :mod:`repro.engine.config`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .complexity_suite import TABLE1_BENCHMARKS
from .new_assertions import TABLE2_BENCHMARKS
from .svcomp_suite import SVCOMP_RECURSIVE_BENCHMARKS

__all__ = [
    "SuiteEntry",
    "Suite",
    "SUITES",
    "get_suite",
    "iter_suite",
    "suite_entry",
    "suite_names",
]

#: Table-1 rows whose end-to-end analysis takes minutes in pure Python.
_TABLE1_SLOW = frozenset({"strassen", "qsort_steps", "closest_pair", "ackermann"})

#: The representative Fig.-3 subset run by default (the full 17-benchmark
#: sweep is gated behind full-bench mode, matching the bench harness).
_FIG3_FAST = frozenset(
    {"Fibonacci01", "RecHanoi02", "RecHanoi03", "Sum02", "Fibonacci02"}
)


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark program plus everything needed to analyse it."""

    name: str
    source: str
    #: analysis to run: ``"complexity"`` (cost bound) or ``"assertion"``.
    kind: str
    #: the procedure to extract a cost bound from (complexity entries only).
    procedure: Optional[str] = None
    cost_variable: str = "cost"
    #: parameter substitutions applied to the symbolic bound, as sorted pairs
    #: (kept hashable so entries can be used as dict keys / cached on).
    substitutions: tuple[tuple[str, int], ...] = ()
    #: excluded unless full-bench mode is on.
    slow: bool = False
    #: the paper's reported verdicts/bounds for context in reports.
    paper: Mapping[str, object] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class Suite:
    """A named collection of benchmark entries (one evaluation artefact)."""

    name: str
    title: str
    entries: tuple[SuiteEntry, ...]

    def iter(self, full: bool = False) -> tuple[SuiteEntry, ...]:
        """The entries to run: all of them in full mode, fast ones otherwise."""
        if full:
            return self.entries
        return tuple(entry for entry in self.entries if not entry.slow)

    def entry(self, name: str) -> SuiteEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(f"no benchmark named {name!r} in suite {self.name!r}")


def _table1() -> Suite:
    entries = tuple(
        SuiteEntry(
            name=spec.name,
            source=spec.source,
            kind="complexity",
            procedure=spec.procedure,
            cost_variable=spec.cost_variable,
            substitutions=tuple(sorted(spec.substitutions.items())),
            slow=spec.name in _TABLE1_SLOW,
            paper={
                "actual": spec.actual,
                "chora": spec.paper_chora,
                "icra": spec.paper_icra,
                "other": spec.paper_other,
            },
        )
        for spec in TABLE1_BENCHMARKS
    )
    return Suite("table1", "Table 1: complexity bounds", entries)


def _fig3() -> Suite:
    entries = tuple(
        SuiteEntry(
            name=spec.name,
            source=spec.source,
            kind="assertion",
            slow=spec.name not in _FIG3_FAST,
            paper={
                "expected_chora": spec.expected_chora,
                "provable_by_unrolling": spec.provable_by_unrolling,
            },
        )
        for spec in SVCOMP_RECURSIVE_BENCHMARKS
    )
    return Suite("fig3", "Figure 3: SV-COMP recursive assertions", entries)


def _table2() -> Suite:
    entries = tuple(
        SuiteEntry(
            name=spec.name,
            source=spec.source,
            kind="assertion",
            paper={
                "verdicts": dict(spec.paper_verdicts),
                "times": dict(spec.paper_times),
            },
        )
        for spec in TABLE2_BENCHMARKS
    )
    return Suite("table2", "Table 2: assertion checking", entries)


SUITES: dict[str, Suite] = {
    suite.name: suite for suite in (_table1(), _fig3(), _table2())
}


def suite_names() -> tuple[str, ...]:
    return tuple(SUITES)


def get_suite(name: str) -> Suite:
    try:
        return SUITES[name]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown suite {name!r} (known: {known})") from None


def iter_suite(name: str, full: bool = False) -> tuple[SuiteEntry, ...]:
    """The entries of suite ``name`` that should run (respecting ``full``)."""
    return get_suite(name).iter(full)


def suite_entry(suite: str, name: str) -> SuiteEntry:
    """Look up one benchmark entry by suite and benchmark name."""
    return get_suite(suite).entry(name)
