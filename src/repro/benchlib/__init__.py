"""All benchmark programs used in the paper's evaluation, in the mini-language.

* :mod:`repro.benchlib.complexity_suite` — the 12 Table-1 complexity benchmarks;
* :mod:`repro.benchlib.svcomp_suite` — the 17 SV-COMP-style recursive
  assertion benchmarks of Figure 3;
* :mod:`repro.benchlib.new_assertions` — the 3 hand-written Table-2 benchmarks;
* :mod:`repro.benchlib.examples_suite` — the worked examples of §2, §4.3,
  §4.4 and §4.5.
"""

from .complexity_suite import ComplexityBenchmark, TABLE1_BENCHMARKS, benchmark_by_name
from .new_assertions import (
    AssertionBenchmark,
    TABLE2_BENCHMARKS,
    assertion_benchmark_by_name,
)
from .svcomp_suite import (
    PAPER_FIG3_PROVED_COUNTS,
    SVCOMP_RECURSIVE_BENCHMARKS,
    SvcompBenchmark,
)
from .examples_suite import (
    DIFFER,
    MISSING_BASE_P3_P4,
    MUTUAL_P1_P2,
    SUBSET_SUM_OVERVIEW,
)
from .suites import (
    SUITES,
    Suite,
    SuiteEntry,
    get_suite,
    iter_suite,
    suite_entry,
    suite_names,
)

__all__ = [
    "ComplexityBenchmark",
    "TABLE1_BENCHMARKS",
    "benchmark_by_name",
    "AssertionBenchmark",
    "TABLE2_BENCHMARKS",
    "assertion_benchmark_by_name",
    "PAPER_FIG3_PROVED_COUNTS",
    "SVCOMP_RECURSIVE_BENCHMARKS",
    "SvcompBenchmark",
    "DIFFER",
    "MISSING_BASE_P3_P4",
    "MUTUAL_P1_P2",
    "SUBSET_SUM_OVERVIEW",
    "SUITES",
    "Suite",
    "SuiteEntry",
    "get_suite",
    "iter_suite",
    "suite_entry",
    "suite_names",
]
