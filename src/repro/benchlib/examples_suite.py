"""The paper's worked examples as mini-language programs.

* ``SUBSET_SUM_OVERVIEW`` — §2 (Fig. 1): subsetSum / subsetSumAux with the
  ``nTicks`` counter; the expected summary is
  ``nTicks' <= nTicks + 2^h - 1``, ``return' <= h - 1``, ``h <= 1 + n - i``.
* ``DIFFER`` — §4.3 (Fig. 2): the two-region example whose lower bounds need
  decreasing bounding functions (``(n-1)/2 <= x' <= n``).
* ``MUTUAL_P1_P2`` — §4.4 (Ex. 4.1): the coupled recurrence
  ``[b1;b2](h+1) <= [[0,18],[2,0]]·[b1;b2](h) + [17;1]`` with ``6^h`` growth.
* ``MISSING_BASE_P3_P4`` — §4.5 (Ex. 4.2): P3 has no base case until the
  equation-system transformation introduces ``P4_no_P3``.
"""

from __future__ import annotations

__all__ = [
    "SUBSET_SUM_OVERVIEW",
    "DIFFER",
    "MUTUAL_P1_P2",
    "MISSING_BASE_P3_P4",
]

SUBSET_SUM_OVERVIEW = """
int nTicks;
int found;
int subsetSumAux(int *A, int i, int n, int sum) {
    nTicks++;
    if (i >= n) {
        if (sum == 0) { found = 1; }
        return 0;
    }
    int size = subsetSumAux(A, i + 1, n, sum + A[i]);
    if (found != 0) { return size + 1; }
    size = subsetSumAux(A, i + 1, n, sum);
    return size;
}
int subsetSum(int *A, int n) {
    found = 0;
    return subsetSumAux(A, 0, n, 0);
}
"""

DIFFER = """
int x;
int y;
void differ(int n) {
    if (n == 0 || n == 1) { x = 0; y = 0; return; }
    differ(nondet() ? n - 1 : n - 2);
    int temp = x;
    differ(nondet() ? n - 1 : n - 2);
    x = temp + 1;
    y = y + 1;
}
"""

MUTUAL_P1_P2 = """
int g;
void P1(int n) {
    if (n <= 1) { g++; return; }
    for (int i = 0; i < 18; i++) { P2(n - 1); }
}
void P2(int n) {
    if (n <= 1) { g++; return; }
    for (int i = 0; i < 2; i++) { P1(n - 1); }
}
"""

MISSING_BASE_P3_P4 = """
int cost;
void P3(int n) {
    if (n <= 1) { P4(n - 1); P4(n - 1); return; }
    P3(n - 1);
    P4(n - 1);
}
void P4(int n) {
    if (n <= 1) { cost++; return; }
    P4(n - 1);
    P3(n - 1);
}
"""
