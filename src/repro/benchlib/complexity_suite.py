"""The twelve complexity benchmarks of Table 1.

Each benchmark is a working mini-language program instrumented with an
explicit ``cost`` variable, together with the metadata the harness needs:
which procedure to analyse, how the program's size parameter maps onto that
procedure's parameters, the true asymptotic bound, the bound the paper
reports for CHORA and ICRA, and the published bound of the best other tool
(Table 1, column 5).

Array-manipulating divide-and-conquer algorithms are written over integer
sizes with array contents as non-deterministic values — exactly the
abstraction CHORA itself applies (it reasons about integer variables only),
so the cost structure the analysis sees is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ComplexityBenchmark", "TABLE1_BENCHMARKS", "benchmark_by_name"]


@dataclass(frozen=True)
class ComplexityBenchmark:
    """One row of Table 1."""

    name: str
    source: str
    procedure: str                      # the recursive procedure to analyse
    cost_variable: str = "cost"
    substitutions: Mapping[str, int] = field(default_factory=dict)
    actual: str = ""                    # true asymptotic bound
    paper_chora: str = ""               # bound reported for CHORA in Table 1
    paper_icra: str = "n.b."            # bound reported for ICRA in Table 1
    paper_other: str = ""               # best other published bound + source
    #: Interpreter arguments used by tests to cross-check soundness.
    test_sizes: tuple[int, ...] = (1, 2, 3, 4, 5)


FIBONACCI = ComplexityBenchmark(
    name="fibonacci",
    procedure="fib",
    actual="O(phi^n)",
    paper_chora="O(2^n)",
    paper_other="[PUBS]: O(2^n)",
    source="""
int cost;
int fib(int n) {
    cost++;
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
""",
)

HANOI = ComplexityBenchmark(
    name="hanoi",
    procedure="applyHanoi",
    actual="O(2^n)",
    paper_chora="O(2^n)",
    paper_other="[PUBS]: O(2^n)",
    source="""
int cost;
void applyHanoi(int n, int from, int to, int via) {
    if (n == 0) { return; }
    cost++;
    applyHanoi(n - 1, from, via, to);
    applyHanoi(n - 1, via, to, from);
}
""",
)

SUBSET_SUM = ComplexityBenchmark(
    name="subset_sum",
    procedure="subsetSumAux",
    substitutions={"i": 0, "sum": 0},
    actual="O(2^n)",
    paper_chora="O(2^n)",
    paper_other="[Kahn-Hoffmann]: O(2^n)",
    source="""
int cost;
int found;
int subsetSumAux(int *A, int i, int n, int sum) {
    cost++;
    if (i >= n) {
        if (sum == 0) { found = 1; }
        return 0;
    }
    int size = subsetSumAux(A, i + 1, n, sum + A[i]);
    if (found != 0) { return size + 1; }
    size = subsetSumAux(A, i + 1, n, sum);
    return size;
}
int subsetSum(int *A, int n) {
    found = 0;
    return subsetSumAux(A, 0, n, 0);
}
""",
)

BST_COPY = ComplexityBenchmark(
    name="bst_copy",
    procedure="bstCopy",
    actual="O(2^n)",
    paper_chora="O(2^n)",
    paper_other="[PUBS]: O(2^n)",
    source="""
int cost;
void bstCopy(int n) {
    cost++;
    if (n <= 0) { return; }
    bstCopy(n - 1);
    bstCopy(n - 1);
}
""",
)

BALL_BINS3 = ComplexityBenchmark(
    name="ball_bins3",
    procedure="ballBins",
    actual="O(3^n)",
    paper_chora="O(3^n)",
    paper_other="[Kahn-Hoffmann]: O(3^n)",
    source="""
int cost;
void ballBins(int n) {
    if (n <= 0) { return; }
    cost++;
    ballBins(n - 1);
    ballBins(n - 1);
    ballBins(n - 1);
}
""",
)

KARATSUBA = ComplexityBenchmark(
    name="karatsuba",
    procedure="karatsuba",
    actual="O(n^log2(3))",
    paper_chora="O(n^log2(3))",
    paper_other="[Chatterjee et al.]: O(n^1.6)",
    source="""
int cost;
void karatsuba(int *A, int *B, int n) {
    if (n <= 1) { cost++; return; }
    int half = n / 2;
    int i = 0;
    while (i < n) { cost++; i++; }
    karatsuba(A, B, half);
    karatsuba(A, B, half);
    karatsuba(A, B, half);
}
""",
)

MERGESORT = ComplexityBenchmark(
    name="mergesort",
    procedure="mergesort",
    actual="O(n log(n))",
    paper_chora="O(n log(n))",
    paper_other="[PUBS]: O(n log(n))",
    source="""
int cost;
void merge(int *A, int lo, int n) {
    int i = 0;
    while (i < n) { cost++; A[lo + i] = A[lo + i]; i++; }
}
void mergesort(int *A, int n) {
    if (n <= 1) { return; }
    int half = n / 2;
    mergesort(A, half);
    mergesort(A, n - half);
    merge(A, 0, n);
}
""",
)

STRASSEN = ComplexityBenchmark(
    name="strassen",
    procedure="strassen",
    actual="O(n^log2(7))",
    paper_chora="O(n^log2(7))",
    paper_other="[Chatterjee et al.]: O(n^2.9)",
    source="""
int cost;
void matrixAdd(int n) {
    int i = 0;
    while (i < n) {
        int j = 0;
        while (j < n) { cost++; j++; }
        i++;
    }
}
void strassen(int n) {
    if (n <= 1) { cost++; return; }
    int half = n / 2;
    matrixAdd(n);
    strassen(half);
    strassen(half);
    strassen(half);
    strassen(half);
    strassen(half);
    strassen(half);
    strassen(half);
}
""",
)

QSORT_CALLS = ComplexityBenchmark(
    name="qsort_calls",
    procedure="qsort",
    substitutions={"lo": 0},
    actual="O(n)",
    paper_chora="O(2^n)",
    paper_other="[Carbonneaux et al.]: O(n)",
    source="""
int cost;
void qsort(int *A, int lo, int n) {
    cost++;
    if (n - lo <= 1) { return; }
    int pivot = nondet(lo, n);
    qsort(A, lo, pivot);
    qsort(A, pivot + 1, n);
}
""",
)

QSORT_STEPS = ComplexityBenchmark(
    name="qsort_steps",
    procedure="qsortSteps",
    substitutions={"lo": 0},
    actual="O(n^2)",
    paper_chora="O(n*2^n)",
    paper_other="[Chatterjee et al.]: O(n^2)",
    source="""
int cost;
void qsortSteps(int *A, int lo, int n) {
    if (n - lo <= 1) { return; }
    int i = lo;
    while (i < n) { cost++; i++; }
    int pivot = nondet(lo, n);
    qsortSteps(A, lo, pivot);
    qsortSteps(A, pivot + 1, n);
}
""",
)

CLOSEST_PAIR = ComplexityBenchmark(
    name="closest_pair",
    procedure="closestPair",
    actual="O(n log(n))",
    paper_chora="n.b.",
    paper_other="[Chatterjee et al.]: O(n log(n))",
    source="""
int cost;
int closestPair(int *P, int n) {
    if (n <= 3) { cost++; return 1; }
    int half = n / 2;
    int left = closestPair(P, half);
    int right = closestPair(P, n - half);
    int best = min(left, right);
    int i = 0;
    int strip = 0;
    while (i < n) {
        cost++;
        if (nondet() > 0) { strip = strip + 1; }
        i = i + 1;
    }
    int j = 0;
    while (j < strip) {
        int k = 0;
        while (k < 7 && k < strip) { cost++; k = k + 1; }
        j = j + 1;
    }
    return best;
}
""",
)

ACKERMANN = ComplexityBenchmark(
    name="ackermann",
    procedure="ackermann",
    actual="Ack(n)",
    paper_chora="n.b.",
    paper_other="[PUBS]: n.b.",
    source="""
int cost;
int ackermann(int m, int n) {
    cost++;
    if (m == 0) { return n + 1; }
    if (n == 0) { return ackermann(m - 1, 1); }
    return ackermann(m - 1, ackermann(m, n - 1));
}
""",
)

TABLE1_BENCHMARKS: tuple[ComplexityBenchmark, ...] = (
    FIBONACCI,
    HANOI,
    SUBSET_SUM,
    BST_COPY,
    BALL_BINS3,
    KARATSUBA,
    MERGESORT,
    STRASSEN,
    QSORT_CALLS,
    QSORT_STEPS,
    CLOSEST_PAIR,
    ACKERMANN,
)


def benchmark_by_name(name: str) -> ComplexityBenchmark:
    for benchmark in TABLE1_BENCHMARKS:
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"no Table 1 benchmark named {name!r}")
