"""The three hand-written assertion benchmarks of Table 2 (Fig. 5).

``quad`` — a recursive call inside a possibly-unbounded loop, asserting the
exact closed form of the return value; ``pow2_overflow`` — an assertion
inside a non-linearly recursive function ruling out numerical overflow;
``height`` — the size of a tree of recursive calls bounds its height.

The paper's verdicts (Table 2) are recorded so the harness can print the
same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["AssertionBenchmark", "TABLE2_BENCHMARKS", "assertion_benchmark_by_name"]


@dataclass(frozen=True)
class AssertionBenchmark:
    """One assertion-checking benchmark plus the paper's per-tool verdicts."""

    name: str
    source: str
    expected_chora: bool
    paper_verdicts: Mapping[str, bool]
    paper_times: Mapping[str, float]


QUAD = AssertionBenchmark(
    name="quad",
    expected_chora=True,
    paper_verdicts={"CHORA": True, "ICRA": True, "UA": False, "UTaipan": True, "VIAP": False},
    paper_times={"CHORA": 0.70, "ICRA": 1.08, "UA": 900.0, "UTaipan": 4.24, "VIAP": 4.71},
    source="""
int quad(int m) {
    if (m == 0) { return 0; }
    int retval = 0;
    do { retval = quad(m - 1) + m; } while (*);
    return retval;
}
int main(int n) {
    assume(n >= 0);
    int r = quad(n);
    assert(r * 2 == n + n * n);
    return r;
}
""",
)

POW2_OVERFLOW = AssertionBenchmark(
    name="pow2_overflow",
    expected_chora=True,
    paper_verdicts={"CHORA": True, "ICRA": True, "UA": False, "UTaipan": False, "VIAP": False},
    paper_times={"CHORA": 0.61, "ICRA": 1.28, "UA": 900.0, "UTaipan": 900.0, "VIAP": 1.79},
    source="""
int pow2_overflow(int p) {
    assume(p >= 0);
    assume(p <= 29);
    if (p == 0) { return 1; }
    int r1 = pow2_overflow(p - 1);
    int r2 = pow2_overflow(p - 1);
    assert(r1 + r2 < 1073741824);
    return r1 + r2;
}
""",
)

HEIGHT = AssertionBenchmark(
    name="height",
    expected_chora=True,
    paper_verdicts={"CHORA": True, "ICRA": False, "UA": True, "UTaipan": True, "VIAP": False},
    paper_times={"CHORA": 0.58, "ICRA": 0.52, "UA": 8.82, "UTaipan": 13.0, "VIAP": 2.85},
    source="""
int height(int size) {
    if (size == 0) { return 0; }
    int left_size = nondet(0, size);
    int right_size = size - left_size - 1;
    int left_height = height(left_size);
    int right_height = height(right_size);
    return 1 + max(left_height, right_height);
}
int main(int n) {
    assume(n >= 0);
    int h = height(n);
    assert(h <= n);
    return h;
}
""",
)

TABLE2_BENCHMARKS: tuple[AssertionBenchmark, ...] = (QUAD, POW2_OVERFLOW, HEIGHT)


def assertion_benchmark_by_name(name: str) -> AssertionBenchmark:
    for benchmark in TABLE2_BENCHMARKS:
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"no Table 2 benchmark named {name!r}")
