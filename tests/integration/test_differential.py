"""Differential tests: CHORA against the baseline analysers, row by row.

The paper's evaluation story is *relative*: CHORA proves assertions and finds
bounds that bounded unrolling (Fig. 3's unrolling-capable tools) and ICRA
(Table 1) cannot.  These tests re-run both sides of that comparison through
the engine's task registry and pin the relationship down:

* where the paper claims CHORA dominance and this reproduction achieves it,
  CHORA must never become *less* precise than the baseline ("a baseline
  proves it but CHORA does not" is a regression, not a quirk);
* the per-row verdicts of both tools are asserted exactly (fixed seeds,
  fixed unrolling depths — any flip is a precision change that must be
  reviewed, which is the point of a differential suite).

Slow rows carry the repository's ``slow`` marker and run in CI's slow job.
"""

import dataclasses

import pytest

from repro.benchlib.suites import get_suite
from repro.core import ChoraOptions
from repro.engine import AnalysisTask, execute_task, full_bench_enabled

#: Unrolling depths used for the baseline comparisons.  Chosen small enough
#: for the default test job; verdicts below are pinned at these depths.
UNROLL_DEPTH = {"table2": 3, "fig3": 4}

#: Known gaps of this reproduction versus the paper's Table 2: the paper's
#: CHORA proves ``quad`` but this reproduction does not (recorded since the
#: seed), so ``quad`` is exempt from the dominance assertion.
KNOWN_GAPS = {"quad"}


def run_tool(suite: str, name: str, kind: str, **params):
    entry = get_suite(suite).entry(name)
    task = AnalysisTask.from_entry(entry, suite=suite)
    if kind != entry.kind or params:
        task = dataclasses.replace(
            task, kind=kind, params=tuple(sorted(params.items()))
        )
    return execute_task(task, ChoraOptions())


def row_params(suite: str):
    for entry in get_suite(suite).entries:
        marks = []
        if entry.slow:
            # Slow rows take minutes each: they carry the repository's slow
            # marker and — like every other consumer of these rows (the
            # bench harness, `repro bench`) — only run in full-bench mode.
            marks = [
                pytest.mark.slow,
                pytest.mark.skipif(
                    not full_bench_enabled(),
                    reason="slow benchmark row; set REPRO_FULL_BENCH=1",
                ),
            ]
        yield pytest.param(entry.name, marks=marks)


def normalize_bound(bound: str) -> str:
    """Asymptotic-class strings modulo formatting (``n*log(n)`` vs ``n log(n)``)."""
    return (bound or "").replace("*", "").replace(" ", "")


def assert_dominance(name: str, chora_proved: bool, baseline_proved: bool):
    """CHORA may not be strictly less precise than a baseline on a row where
    the paper claims dominance (modulo the documented reproduction gaps)."""
    if name in KNOWN_GAPS:
        return
    assert chora_proved or not baseline_proved, (
        f"{name}: the baseline proves this assertion but CHORA does not"
    )


class TestTable2VersusUnrolling:
    #: This reproduction's reference verdicts (paper's CHORA also proves
    #: quad; that gap predates this test and is tracked in EXPERIMENTS.md).
    CHORA_VERDICTS = {"quad": False, "pow2_overflow": True, "height": True}

    @pytest.mark.parametrize("name", list(row_params("table2")))
    def test_chora_never_less_precise(self, name):
        chora = run_tool("table2", name, "assertion")["proved"]
        unrolling = run_tool(
            "table2", name, "assertion-unrolling", depth=UNROLL_DEPTH["table2"]
        )["proved"]
        assert chora == self.CHORA_VERDICTS[name]
        assert_dominance(name, chora, unrolling)
        if name == "height":
            # The paper's flagship row: unbounded recursion with a symbolic
            # argument, provable by the height-indexed recurrence analysis
            # but not by bounded unrolling.
            assert chora and not unrolling


class TestFig3VersusUnrolling:
    @pytest.mark.parametrize("name", list(row_params("fig3")))
    def test_chora_matches_expectation_and_dominates(self, name):
        entry = get_suite("fig3").entry(name)
        chora = run_tool("fig3", name, "assertion")["proved"]
        assert chora == entry.paper["expected_chora"], (
            f"{name}: CHORA verdict changed vs. the recorded expectation"
        )
        if entry.slow:
            # The CHORA expectation above is the expensive, valuable part;
            # the unrolling comparison adds little on the slow rows.
            return
        unrolling = run_tool(
            "fig3", name, "assertion-unrolling", depth=UNROLL_DEPTH["fig3"]
        )["proved"]
        if entry.paper["expected_chora"]:
            assert_dominance(name, chora, unrolling)


class TestTable1VersusIcra:
    @pytest.mark.parametrize("name", list(row_params("table1")))
    def test_chora_bound_beats_icra(self, name):
        entry = get_suite("table1").entry(name)
        chora = run_tool("table1", name, "complexity")
        icra = run_tool("table1", name, "complexity-icra")
        # CHORA reproduces the paper's Table-1 bound on every row.
        assert normalize_bound(chora["bound"]) == normalize_bound(entry.paper["chora"]), (
            f"{name}: CHORA bound {chora['bound']!r} != paper {entry.paper['chora']!r}"
        )
        # ICRA must never out-perform CHORA: on rows where ICRA finds no
        # bound ("n.b."), that is exactly the paper's dominance claim; on
        # rows where it does, CHORA must have found one too.
        if icra["found"]:
            assert chora["found"], (
                f"{name}: ICRA found a bound but CHORA did not"
            )
