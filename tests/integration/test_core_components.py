"""Integration tests for the individual core components (Alg. 2/3, §4.2, §4.4, §4.5)."""

import os

import pytest
import sympy

from repro.analysis import ProcedureContext
from repro.benchlib import MISSING_BASE_P3_P4, MUTUAL_P1_P2, SUBSET_SUM_OVERVIEW
from repro.core import (
    build_stratified_system,
    compute_depth_bound,
    descent_depth_bound,
    procedures_without_base_case,
    run_height_analysis,
    transform_missing_base_cases,
)
from repro.lang import parse_program

# Each analysis here takes seconds; CI runs these as a separate parallel job.
pytestmark = pytest.mark.slow


def _scc_setup(source, names):
    program = parse_program(source)
    procedures = {p.name: p for p in program.procedures}
    contexts = {
        name: ProcedureContext.of(procedures[name], program.global_names)
        for name in names
    }
    return program, procedures, contexts


class TestHeightAnalysisAlg2:
    def test_subset_sum_candidate_terms_and_recurrences(self):
        program, procedures, contexts = _scc_setup(SUBSET_SUM_OVERVIEW, ["subsetSumAux"])
        analysis = run_height_analysis(contexts, {}, procedures)
        terms = [str(b.term) for b in analysis.bound_symbols["subsetSumAux"]]
        # The §2 candidate terms: return' and nTicks' - nTicks - 1 are present
        # (possibly among others).
        assert any("return'" in t for t in terms)
        assert any("nTicks" in t for t in terms)
        assert analysis.candidate_inequations
        system = build_stratified_system(
            analysis.candidate_inequations, analysis.bound_symbols["subsetSumAux"]
        )
        assert system.equations
        solution = system.solve()
        # The nTicks bounding function solves to an exponential: 2^h shape.
        exponential = [
            closed
            for closed in solution.values()
            if closed.expression.dominant_term()[0] >= 2
        ]
        assert exponential


class TestDepthBoundSection42:
    def test_subset_sum_descent_witness(self):
        program, procedures, contexts = _scc_setup(SUBSET_SUM_OVERVIEW, ["subsetSumAux"])
        analysis = run_height_analysis(contexts, {}, procedures)
        witness = descent_depth_bound(
            contexts, analysis.base_summaries, {}, procedures
        )
        assert witness is not None
        # The ranking expression is n - i, decreasing arithmetically.
        n, i = sympy.symbols("n i", positive=True)
        assert sympy.simplify(witness.symbolic_height_bound() - (n - i + 1)) == 0

    def test_alg4_polyhedral_constraints(self):
        program, procedures, contexts = _scc_setup(SUBSET_SUM_OVERVIEW, ["subsetSumAux"])
        analysis = run_height_analysis(contexts, {}, procedures)
        depth = compute_depth_bound(
            "subsetSumAux", contexts, analysis.base_summaries, {}, procedures
        )
        # Some polyhedral constraint ties the height to the parameters.
        assert depth.constraints
        assert depth.symbolic_bound is not None


class TestMissingBaseSection45:
    def test_p3_detected_and_transformed(self):
        program = parse_program(MISSING_BASE_P3_P4)
        assert procedures_without_base_case(program) == frozenset({"P3"})
        transformed = transform_missing_base_cases(program)
        names = set(transformed.procedure_names)
        assert "P4_no_P3" in names
        # After the transformation, no procedure lacks a base case.
        assert not procedures_without_base_case(transformed)

    def test_programs_with_base_cases_untouched(self):
        program = parse_program(SUBSET_SUM_OVERVIEW)
        assert procedures_without_base_case(program) == frozenset()
        assert transform_missing_base_cases(program) is program


class TestMutualRecursionSection44:
    @pytest.mark.skipif(
        not os.environ.get("REPRO_SLOW_TESTS"),
        reason="analysing the Ex. 4.1 component takes several minutes in this "
        "pure-Python build (loops containing recursive calls); set "
        "REPRO_SLOW_TESTS=1 to include it",
    )
    def test_coupled_recurrence_is_extracted(self):
        """Ex. 4.1: the interleaved analysis produces a coupled recurrence whose
        solution grows like 6^h (the full end-to-end run is exercised by the
        ablation benchmark; here we check the candidate-extraction phase)."""
        program, procedures, contexts = _scc_setup(MUTUAL_P1_P2, ["P1", "P2"])
        analysis = run_height_analysis(contexts, {}, procedures)
        # Both procedures contribute bounded terms over the global g.
        assert analysis.bound_symbols["P1"]
        assert analysis.bound_symbols["P2"]
        assert any("g" in str(b.term) for b in analysis.bound_symbols["P1"])
        # Candidate inequations couple P1's h+1 bounds to P2's h bounds.
        p1_h1 = {b.at_h_plus_1 for b in analysis.bound_symbols["P1"]}
        p2_h = {b.at_h for b in analysis.bound_symbols["P2"]}
        coupled = [
            inequation
            for inequation in analysis.candidate_inequations
            if (inequation.polynomial.symbols & p1_h1)
            and (inequation.polynomial.symbols & p2_h)
        ]
        assert coupled
