"""End-to-end tests of the ``repro`` CLI and the engine smoke path.

The fast tests drive :func:`repro.cli.main` in-process; the slow test is the
CI acceptance scenario — ``repro bench --suite table2 --jobs 2 --json`` runs
every benchmark through worker processes, and an immediate re-run is served
entirely from the result cache, measurably faster.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

TRIVIAL = "int main(int n) { assume(n >= 0); int r = n + 1; assert(r >= 1); return r; }"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFastCommands:
    def test_suites_lists_the_three_artefacts(self, capsys):
        code, out, _ = run_cli(capsys, "suites")
        assert code == 0
        for name in ("table1", "fig3", "table2"):
            assert name in out

    def test_analyze_text_output(self, capsys, tmp_path):
        program = tmp_path / "toy.c"
        program.write_text(TRIVIAL, encoding="utf-8")
        code, out, _ = run_cli(
            capsys, "analyze", str(program), "--cache-dir", str(tmp_path / "cache")
        )
        assert code == 0
        assert "=== main ===" in out
        assert "PROVED" in out

    def test_analyze_json_and_cache_hit(self, capsys, tmp_path):
        program = tmp_path / "toy.c"
        program.write_text(TRIVIAL, encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        code, out, _ = run_cli(
            capsys, "analyze", str(program), "--json", "--cache-dir", cache_dir
        )
        assert code == 0
        first = json.loads(out)
        assert first["outcome"] == "ok"
        assert first["proved"] is True
        assert first["cache_hit"] is False
        code, out, _ = run_cli(
            capsys, "analyze", str(program), "--json", "--cache-dir", cache_dir
        )
        second = json.loads(out)
        assert second["cache_hit"] is True
        assert second["payload"] == first["payload"]

    def test_analyze_missing_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "analyze", str(tmp_path / "absent.c"))
        assert code == 2
        assert "cannot read" in err

    def test_analyze_bad_substitution(self, capsys, tmp_path):
        program = tmp_path / "toy.c"
        program.write_text(TRIVIAL, encoding="utf-8")
        code, _, err = run_cli(capsys, "analyze", str(program), "--sub", "n=x")
        assert code == 2
        assert "--sub" in err

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "0 entries" in out
        # The directory is always reported, even for an empty cache.
        assert str(tmp_path) in out
        code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "removed 0" in out

    def test_cache_stats_reports_per_suite_counts(self, capsys, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"proved": True}, task_name="x", suite="table2")
        cache.put("b" * 64, {"proved": True}, task_name="y", suite="table2")
        cache.put("c" * 64, {"proved": True}, task_name="z")
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert str(tmp_path) in out
        assert "3 entries" in out
        assert "table2: 2" in out
        assert "(none): 1" in out
        # The cheap variant (used by the service's /stats route) keeps the
        # counters but skips the per-entry reads.
        cheap = cache.stats(per_suite=False)
        assert cheap["entries"] == 3 and "suites" not in cheap

    def test_timeout_zero_is_an_immediate_deadline(self, capsys, tmp_path):
        program = tmp_path / "toy.c"
        program.write_text(TRIVIAL, encoding="utf-8")
        code, out, err = run_cli(
            capsys,
            "analyze",
            str(program),
            "--no-cache",
            "--timeout",
            "0",
        )
        # 0 seconds means "time out immediately", never "no deadline".
        assert code == 1
        assert "timeout" in (out + err)

    def test_negative_timeout_is_rejected(self, capsys, tmp_path):
        program = tmp_path / "toy.c"
        program.write_text(TRIVIAL, encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "analyze", str(program), "--timeout", "-1")
        assert excinfo.value.code == 2
        assert "timeout must be >= 0" in capsys.readouterr().err

    def test_cache_stats_reports_memo_snapshot(self, capsys, tmp_path):
        from repro.engine import ResultCache
        from repro.engine.cache import code_fingerprint
        from repro.polyhedra import cache as memo

        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "polyhedra memo snapshot: none" in out

        cache = ResultCache(tmp_path)
        memo.clear_caches(force=True)
        memo.register_cache("lp.entails").lookup(("k",), lambda: True)
        memo.save_snapshot(cache.memo_storage(), code_fingerprint())
        memo.clear_caches(force=True)
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "polyhedra memo snapshot:" in out
        assert "lp.entails: 1" in out

        code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "memo snapshot" in out
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", str(tmp_path))
        assert "polyhedra memo snapshot: none" in out

    def test_module_entry_point(self, tmp_path):
        src = Path(__file__).resolve().parents[2] / "src"
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(src)
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "suites"],
            capture_output=True,
            text=True,
            env=environment,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "table2" in completed.stdout


class TestBenchTool:
    def test_tool_maps_suite_kinds(self):
        from repro.engine.suites import suite_tasks

        assert {t.kind for t in suite_tasks("table1", full=True, tool="icra")} == {
            "complexity-icra"
        }
        assert {t.kind for t in suite_tasks("table2", tool="icra")} == {
            "assertion-icra"
        }
        tasks = suite_tasks("table2", tool="unrolling", depth=2)
        assert {t.kind for t in tasks} == {"assertion-unrolling"}
        assert all(t.param("depth") == 2 for t in tasks)
        assert {t.kind for t in suite_tasks("table2", tool="chora")} == {"assertion"}

    def test_unknown_tool_is_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "table2", "--tool", "nonsense"])

    def test_unrolling_on_complexity_suite_is_an_error(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table1", "--tool", "unrolling"
        )
        assert code == 2
        assert "no mode" in err

    def test_depth_is_rejected_for_non_unrolling_tools(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table2", "--tool", "icra", "--depth", "4"
        )
        assert code == 2
        assert "--depth" in err

    def test_bench_runs_the_unrolling_baseline(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "bench", "--suite", "table2", "--tool", "unrolling",
            "--depth", "2", "--json", "--no-cache",
        )
        assert code == 0
        data = json.loads(out)
        assert data["tool"] == "unrolling"
        assert [r["kind"] for r in data["results"]] == ["assertion-unrolling"] * 3
        assert data["totals"]["error"] == 0


class TestProfileCommand:
    def test_requires_a_target(self, capsys):
        code, _, err = run_cli(capsys, "profile")
        assert code == 2
        assert "--suite" in err

    def test_micro_records_entries_and_checks(self, capsys, tmp_path):
        argv = [
            "profile", "--micro", "--repeats", "1",
            "--perf-dir", str(tmp_path), "--label", "first",
        ]
        code, out, _ = run_cli(capsys, *argv)
        assert code == 0
        bench_file = tmp_path / "BENCH_micro.json"
        assert bench_file.exists()
        data = json.loads(bench_file.read_text(encoding="utf-8"))
        assert len(data["entries"]) == 1
        assert {row["name"] for row in data["entries"][0]["rows"]} >= {
            "projection_chain", "hull_ladder", "minimize_redundant",
        }
        # A second run with --check compares against the first entry; the
        # same code cannot regress against itself beyond the huge threshold.
        code, out, _ = run_cli(
            capsys,
            "profile", "--micro", "--repeats", "1", "--perf-dir", str(tmp_path),
            "--check", "--threshold", "10000",
        )
        assert code == 0
        data = json.loads(bench_file.read_text(encoding="utf-8"))
        assert len(data["entries"]) == 2
        assert "baseline" in out and "ratio" in out

    def test_regression_gate_fails_on_slowdown(self, tmp_path, capsys):
        from repro.engine import profile as perf

        path = perf.bench_path(tmp_path, "micro")
        perf.append_entry(
            path,
            {
                "kind": "micro", "suite": "micro", "label": "fabricated",
                "created": "2026-01-01T00:00:00Z", "repeats": 1,
                "rows": [{"name": "projection_chain", "seconds": 0.000001}],
                "totals": {"seconds": 0.000001},
            },
        )
        code, _, err = run_cli(
            capsys,
            "profile", "--micro", "--repeats", "1",
            "--perf-dir", str(tmp_path), "--check",
        )
        # Anything real is slower than a fabricated micro-second baseline...
        # except that sub-20ms baseline rows are ignored as noise, so this
        # must still pass.
        assert code == 0

        perf.append_entry(
            path,
            {
                "kind": "micro", "suite": "micro", "label": "fabricated-slow",
                "created": "2026-01-01T00:00:00Z", "repeats": 1,
                "rows": [{"name": "projection_chain", "seconds": 0.05}],
                "totals": {"seconds": 0.05},
            },
        )
        code, _, err = run_cli(
            capsys,
            "profile", "--micro", "--repeats", "1",
            "--perf-dir", str(tmp_path), "--check", "--threshold", "-99.9",
        )
        assert code == 1
        assert "PERF REGRESSION" in err


@pytest.mark.slow
class TestBenchSmoke:
    def test_table2_parallel_then_cached(self, capsys, tmp_path):
        """The acceptance scenario: cold parallel batch, then all cache hits."""
        cache_dir = str(tmp_path / "cache")
        argv = [
            "bench", "--suite", "table2", "--jobs", "2", "--json",
            "--cache-dir", cache_dir,
        ]
        started = time.monotonic()
        code, out, _ = run_cli(capsys, *argv)
        cold_elapsed = time.monotonic() - started
        assert code == 0
        cold = json.loads(out)
        assert cold["totals"]["total"] == 3
        assert cold["totals"]["ok"] == 3
        assert cold["totals"]["cache_hits"] == 0
        assert {result["name"] for result in cold["results"]} == {
            "quad", "pow2_overflow", "height",
        }
        for result in cold["results"]:
            assert result["outcome"] == "ok"
            assert result["proved"] in (True, False)

        started = time.monotonic()
        code, out, _ = run_cli(capsys, *argv)
        warm_elapsed = time.monotonic() - started
        assert code == 0
        warm = json.loads(out)
        assert warm["totals"]["cache_hits"] == 3
        assert [r["name"] for r in warm["results"]] == [
            r["name"] for r in cold["results"]
        ]
        assert [r["proved"] for r in warm["results"]] == [
            r["proved"] for r in cold["results"]
        ]
        # The warm run is served from the cache and must be much faster.
        assert warm_elapsed < cold_elapsed / 2
