"""Golden-output tests for the rendered Table 1 / Table 2 reports.

The rendered tables are user-facing artefacts (CI logs, EXPERIMENTS.md);
formatting drift, precision changes and verdict flips all show up as a diff
against the checked-in goldens.  The snapshots cover the fast suite rows
without timing columns, so they are bit-stable across machines.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/integration/test_reporting_golden.py
"""

import os
from pathlib import Path


from repro.core import ChoraOptions
from repro.engine import execute_task, suite_tasks
from repro.engine.batch import BatchResult, _result_from_payload
from repro.reporting import render_table1, render_table2

GOLDEN_DIR = Path(__file__).parent / "golden"


def run_suite_serial(suite: str) -> list[BatchResult]:
    """The fast rows of a suite, serially and uncached (deterministic)."""
    results = []
    for task in suite_tasks(suite, full=False):
        payload = execute_task(task, ChoraOptions())
        results.append(_result_from_payload(task, payload, 0.0, False))
    return results


def assert_matches_golden(rendered: str, filename: str) -> None:
    path = GOLDEN_DIR / filename
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n", encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert rendered + "\n" == expected, (
        f"rendered table deviates from {path.name}; run with "
        "REPRO_UPDATE_GOLDENS=1 if the change is intentional"
    )


class TestGoldenTables:
    def test_table1_fast_rows(self):
        rendered = render_table1(run_suite_serial("table1"))
        assert_matches_golden(rendered, "table1.txt")

    def test_table2_fast_rows(self):
        rendered = render_table2(run_suite_serial("table2"))
        assert_matches_golden(rendered, "table2.txt")

    def test_time_columns_are_opt_in(self):
        """The golden renderings must not depend on wall-clock."""
        results = [
            BatchResult(
                name="height", kind="assertion", outcome="ok",
                wall_time=1.23, proved=True, suite="table2",
            )
        ]
        plain = render_table2(results)
        timed = render_table2(results, include_times=True)
        assert "1.23" not in plain
        assert "1.23s" in timed
