"""The lint subsystem's outward surfaces: CLI, service route, analyze 400s.

``repro lint`` exit-code contract (0 clean / 1 errors / 2 unreadable),
``--json`` / ``--severity`` / ``--disable``, the ``--lint`` gate through
``repro analyze`` (exit 2, one-line diagnostics, bit-identical output on
clean programs), ``POST /v1/lint``, and the 400 ``invalid_program``
envelope on ``/v1/analyze``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.service import AnalysisServer, WorkerPool

CLEAN = """\
int main(int n) {
    assume(n >= 0);
    int r = n + 1;
    assert(r >= 1);
    return r;
}
"""

DIV_ZERO = "int main(int n) {\n    return n / 0;\n}\n"
PARSE_ERROR = "int main(int n) {\n    return n +;\n}\n"
WARN_ONLY = """\
int main(int n) {
    int a = 0;
    a = 5;
    a = n;
    return a;
}
"""


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLintCommand:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "ok.c"
        path.write_text(CLEAN, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 0
        assert "0 diagnostics" in out

    def test_error_exits_one_with_rendered_line(self, capsys, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text(DIV_ZERO, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 1
        assert f"{path}:2: error: R201:" in out

    def test_warnings_do_not_fail(self, capsys, tmp_path):
        path = tmp_path / "warn.c"
        path.write_text(WARN_ONLY, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 0
        assert "R003" in out

    def test_severity_filter_hides_info(self, capsys, tmp_path):
        path = tmp_path / "warn.c"
        path.write_text(WARN_ONLY, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path), "--severity", "warning")
        assert code == 0
        assert "R003" not in out

    def test_disable_suppresses_a_code(self, capsys, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text(DIV_ZERO, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path), "--disable", "R201")
        assert code == 0
        assert "R201" not in out

    def test_json_envelope(self, capsys, tmp_path):
        good = tmp_path / "ok.c"
        good.write_text(CLEAN, encoding="utf-8")
        bad = tmp_path / "bad.c"
        bad.write_text(DIV_ZERO, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(good), str(bad), "--json")
        assert code == 1
        document = json.loads(out)
        assert document["ok"] is False
        by_file = {entry["file"]: entry for entry in document["files"]}
        assert by_file[str(good)]["ok"] is True
        assert by_file[str(good)]["diagnostics"] == []
        bad_entry = by_file[str(bad)]
        assert bad_entry["ok"] is False
        assert bad_entry["diagnostics"][0]["code"] == "R201"
        assert bad_entry["diagnostics"][0]["line"] == 2

    def test_unreadable_file_exits_two(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "lint", str(tmp_path / "missing.c"))
        assert code == 2
        assert "missing.c" in err

    def test_parse_error_is_r000(self, capsys, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text(PARSE_ERROR, encoding="utf-8")
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 1
        assert f"{path}:2: error: R000:" in out


class TestAnalyzeFrontEndErrors:
    def test_parse_error_is_one_line_exit_two(self, capsys, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text(PARSE_ERROR, encoding="utf-8")
        code, _, err = run_cli(capsys, "analyze", str(path), "--no-cache")
        assert code == 2
        assert f"{path}:2: error: R000: parse error" in err
        assert "Traceback" not in err

    def test_lint_gate_rejects_with_exit_two(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LINT_GATE", raising=False)
        path = tmp_path / "bad.c"
        path.write_text("int main(int n) {\n    return x;\n}\n", encoding="utf-8")
        code, _, err = run_cli(capsys, "analyze", str(path), "--lint", "--no-cache")
        assert code == 2
        assert "invalid-program" in err
        assert "R001" in err

    def test_lint_gate_passes_clean_programs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LINT_GATE", raising=False)
        path = tmp_path / "ok.c"
        path.write_text(CLEAN, encoding="utf-8")
        code, out, _ = run_cli(capsys, "analyze", str(path), "--lint", "--no-cache")
        assert code == 0
        assert "PROVED" in out

    def test_lint_gate_env_is_restored_after_main(self, capsys, tmp_path, monkeypatch):
        # In-process callers (tests, embedding) must not have every later
        # run gated because one invocation passed --lint.
        import os

        monkeypatch.delenv("REPRO_LINT_GATE", raising=False)
        path = tmp_path / "ok.c"
        path.write_text(CLEAN, encoding="utf-8")
        run_cli(capsys, "analyze", str(path), "--lint", "--no-cache")
        assert "REPRO_LINT_GATE" not in os.environ


class TestServiceSurfaces:
    @pytest.fixture()
    def server(self):
        server = AnalysisServer(WorkerPool(workers=1), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.close()
        thread.join(5)

    def _post(self, server, path, body, content_type="application/json"):
        host, port = server.address
        data = body if isinstance(body, bytes) else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=data,
            headers={"Content-Type": content_type},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())

    def test_lint_route_reports_diagnostics(self, server):
        status, document = self._post(server, "/v1/lint", {"source": DIV_ZERO})
        assert status == 200
        assert document["ok"] is False
        assert document["counts"]["error"] == 1
        [diagnostic] = document["diagnostics"]
        assert diagnostic["code"] == "R201"
        assert diagnostic["line"] == 2

    def test_lint_route_clean_program(self, server):
        status, document = self._post(server, "/v1/lint", {"source": CLEAN})
        assert status == 200
        assert document["ok"] is True
        assert document["diagnostics"] == []

    def test_lint_route_severity_and_disable(self, server):
        status, document = self._post(
            server,
            "/v1/lint",
            {"source": WARN_ONLY, "severity": "warning", "disable": ["R003"]},
        )
        assert status == 200
        assert document["ok"] is True
        assert document["diagnostics"] == []

    def test_lint_route_accepts_plain_text(self, server):
        status, document = self._post(
            server, "/v1/lint", DIV_ZERO.encode("utf-8"), content_type="text/plain"
        )
        assert status == 200
        assert document["ok"] is False

    def test_lint_route_rejects_bad_severity(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._post(server, "/v1/lint", {"source": CLEAN, "severity": "loud"})
        assert error.value.code == 400

    def test_analyze_answers_400_on_parse_errors(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._post(server, "/v1/analyze", {"source": PARSE_ERROR})
        assert error.value.code == 400
        envelope = json.load(error.value)
        assert envelope["error"]["code"] == "invalid_program"
        assert "parse error" in envelope["error"]["message"]


class TestServiceGated:
    def test_analyze_answers_400_on_lint_errors_with_gate(self, monkeypatch):
        # The gate env var must be set before the pool forks its workers.
        monkeypatch.setenv("REPRO_LINT_GATE", "1")
        server = AnalysisServer(WorkerPool(workers=1), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/analyze",
                data=json.dumps(
                    {"source": "int main(int n) {\n    return x;\n}\n"}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=60)
            assert error.value.code == 400
            envelope = json.load(error.value)
            assert envelope["error"]["code"] == "invalid_program"
            assert "R001" in envelope["error"]["message"]
        finally:
            server.shutdown()
            server.close()
            thread.join(5)
