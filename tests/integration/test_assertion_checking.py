"""End-to-end assertion-checking tests (Table 2 and selected SV-COMP tasks)."""

import pytest

from repro.benchlib import assertion_benchmark_by_name
from repro.benchlib.svcomp_suite import SVCOMP_RECURSIVE_BENCHMARKS
from repro.core import analyze_program, check_assertions
from repro.lang import parse_program

# Each analysis here takes seconds; CI runs these as a separate parallel job.
pytestmark = pytest.mark.slow


def chora_proves(source: str) -> bool:
    result = analyze_program(parse_program(source))
    outcomes = check_assertions(result)
    return bool(outcomes) and all(outcome.proved for outcome in outcomes)


class TestTable2:
    def test_pow2_overflow_is_proved(self):
        """Overflow-freedom inside a non-linearly recursive function (Fig. 5)."""
        assert chora_proves(assertion_benchmark_by_name("pow2_overflow").source)

    def test_height_is_proved(self):
        """The height of a recursion tree is bounded by its size (Fig. 5)."""
        assert chora_proves(assertion_benchmark_by_name("height").source)

    def test_quad_not_claimed_unsoundly(self):
        """quad needs the exact two-sided closed form; this reproduction does
        not prove it (a precision gap vs. the paper, recorded in
        EXPERIMENTS.md) — but it must never claim it either way unsoundly.
        The assertion is true, so any "proved" verdict would also be fine."""
        verdict = chora_proves(assertion_benchmark_by_name("quad").source)
        assert verdict in (True, False)


class TestNegativeSoundness:
    def test_false_assertion_is_not_proved(self):
        source = """
        int double_it(int n) {
            if (n <= 0) { return 0; }
            return double_it(n - 1) + 2;
        }
        int main(int n) {
            assume(n >= 1);
            int r = double_it(n);
            assert(r < 2 * n);
            return r;
        }
        """
        assert chora_proves(source) is False

    def test_false_exponential_assertion_is_not_proved(self):
        source = """
        int cost;
        void grow(int n) {
            if (n == 0) { return; }
            cost++;
            grow(n - 1);
            grow(n - 1);
        }
        int main(int n) {
            assume(n >= 3);
            cost = 0;
            grow(n);
            assert(cost <= n);
            return cost;
        }
        """
        assert chora_proves(source) is False


class TestSvcompHighlights:
    def test_rec_hanoi03_lower_bound(self):
        spec = next(b for b in SVCOMP_RECURSIVE_BENCHMARKS if b.name == "RecHanoi03")
        assert chora_proves(spec.source) is True

    def test_sum02_nonnegative(self):
        spec = next(b for b in SVCOMP_RECURSIVE_BENCHMARKS if b.name == "Sum02")
        assert chora_proves(spec.source) is True

    def test_mccarthy91_is_not_proved(self):
        """The paper: CHORA cannot prove McCarthy91 (disjunctive summary needed)."""
        spec = next(b for b in SVCOMP_RECURSIVE_BENCHMARKS if b.name == "McCarthy91")
        assert chora_proves(spec.source) is False
