"""End-to-end tests for the complexity pipeline (Table 1 fast rows).

Each test parses a benchmark program, runs the full CHORA analysis, checks
the asymptotic classification against the paper's Table 1, and cross-checks
*soundness* of the symbolic bound against concrete executions of the program
(the interpreter is the ground-truth oracle).
"""

import sympy
import pytest

from repro.benchlib import benchmark_by_name
from repro.core import analyze_program, cost_bound
from repro.lang import Interpreter, parse_program

# Each analysis here takes seconds; CI runs these as a separate parallel job.
pytestmark = pytest.mark.slow


def analyse(name):
    spec = benchmark_by_name(name)
    program = parse_program(spec.source)
    result = analyze_program(program)
    bound = cost_bound(
        result, spec.procedure, spec.cost_variable, substitutions=spec.substitutions
    )
    return spec, program, bound


class TestClassifications:
    def test_hanoi_is_exponential(self):
        _, _, bound = analyse("hanoi")
        assert bound.asymptotic == "O(2^n)"

    def test_fibonacci_is_exponential(self):
        _, _, bound = analyse("fibonacci")
        assert bound.asymptotic == "O(2^n)"

    def test_subset_sum_is_exponential(self):
        _, _, bound = analyse("subset_sum")
        assert bound.asymptotic == "O(2^n)"

    def test_bst_copy_is_exponential(self):
        _, _, bound = analyse("bst_copy")
        assert bound.asymptotic == "O(2^n)"

    def test_ball_bins3_is_three_to_the_n(self):
        _, _, bound = analyse("ball_bins3")
        assert bound.asymptotic == "O(3^n)"

    def test_mergesort_is_n_log_n(self):
        _, _, bound = analyse("mergesort")
        assert bound.asymptotic == "O(n*log(n))"

    def test_karatsuba_matches_paper_exponent(self):
        _, _, bound = analyse("karatsuba")
        assert bound.asymptotic == "O(n^log2(3))"


class TestSoundnessAgainstInterpreter:
    @pytest.mark.parametrize("name,args", [
        ("hanoi", lambda n: [n, 1, 3, 2]),
        ("ball_bins3", lambda n: [n]),
        ("bst_copy", lambda n: [n]),
        ("fibonacci", lambda n: [n]),
    ])
    def test_cost_bound_covers_concrete_runs(self, name, args):
        spec, program, bound = analyse(name)
        assert bound.found
        n = sympy.Symbol("n", positive=True)
        depth_symbol = sympy.Symbol("depth", positive=True)
        for size in spec.test_sizes:
            interpreter = Interpreter(program, max_steps=10_000_000)
            run = interpreter.run(spec.procedure, args(size))
            actual_cost = run.globals[spec.cost_variable]
            substituted = bound.expression.subs(n, size).subs(depth_symbol, size)
            predicted = float(sympy.N(substituted))
            assert actual_cost <= predicted + 1e-6, (name, size, actual_cost, predicted)

    def test_hanoi_bound_is_exact(self):
        spec, program, bound = analyse("hanoi")
        n = sympy.Symbol("n", positive=True)
        for size in (1, 2, 3, 4, 5, 6):
            actual = Interpreter(program).run(spec.procedure, [size, 1, 3, 2]).globals["cost"]
            assert actual == 2**size - 1
            assert sympy.simplify(bound.expression.subs(n, size) - actual) == 0


class TestOverviewExample:
    def test_subset_sum_overview_summary(self):
        """The §2 worked example: nTicks <= 2^h - 1, return <= h - 1, h <= 1 + n - i."""
        from repro.benchlib import SUBSET_SUM_OVERVIEW
        from repro.core import return_bound

        program = parse_program(SUBSET_SUM_OVERVIEW)
        result = analyze_program(program)
        summary = result.summaries["subsetSumAux"]
        assert summary.is_recursive
        assert summary.bounded_terms
        # Depth bound: h <= max(1, 1 + n - i) (arithmetic descent on n - i;
        # the clamp covers calls with i > n, which return at height 1).
        n, i = sympy.symbols("n i", positive=True)
        assert summary.depth_bound.symbolic_bound is not None
        assert sympy.simplify(
            summary.depth_bound.symbolic_bound - sympy.Max(1, n - i + 1)
        ) == 0
        # Cost and return-value bounds at i = 0.
        ticks = cost_bound(result, "subsetSumAux", "nTicks", substitutions={"i": 0, "sum": 0})
        assert ticks.asymptotic == "O(2^n)"
        ret = return_bound(result, "subsetSumAux", substitutions={"i": 0, "sum": 0})
        assert ret.found
        # return' <= h - 1 <= n: linear in n.
        assert ret.asymptotic in ("O(n)", "O(1)")
