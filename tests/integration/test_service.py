"""The warm analysis service: worker pool, HTTP endpoint, CLI integration.

Covers the tentpole acceptance properties: warm workers answer repeated
requests from spliced summaries (measurably below a cold run), results
agree with the cold engine, failures replace workers without sinking the
service, ``POST /v1/batch`` serves whole suites bit-identically to
``repro bench``, the incremental summary store survives a clean service
restart, and ``repro bench --engine warm`` / ``repro batch`` /
``repro loadtest`` / ``--shard`` round-trip through the CLI.  The asyncio
front-end's SLO machinery has its own classes below: the ``/v1`` route
aliasing and error envelope (``TestV1Api``), bounded admission
(``TestBackpressure``), per-request deadlines (``TestDeadlines``) and the
``/v1/metrics`` document under concurrent keep-alive load
(``TestMetrics``).
"""

import json
import multiprocessing
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.engine import AnalysisTask, BatchEngine, MemoryStorage, ResultCache
from repro.engine.tasks import register_kind
from repro.service import (
    AnalysisServer,
    ServiceClient,
    ServiceHTTPError,
    WorkerPool,
    serve,
)

TRIVIAL = "int main(int n) { assume(n >= 0); int r = n + 1; assert(r >= 1); return r; }"

CHAIN = """
int leaf(int n) { assume(n >= 0); return n + 1; }
int mid(int n) { assume(n >= 0); return leaf(n) + 1; }
int main(int n) { assume(n >= 0); int r = mid(n); assert(r >= 2); return r; }
"""

#: A call chain with a recursive component: cold analysis takes long enough
#: (height analysis + recurrence solving) that splice-vs-cold timing
#: comparisons sit far above scheduler noise.
HEAVY = """
int work(int n) { if (n <= 0) { return 0; } return work(n - 1) + 1; }
int main(int n) { assume(n >= 0); int r = work(n); assert(r >= 0); return r; }
"""


@register_kind("service-sleep")
def _service_sleep(task, options):
    time.sleep(float(task.param("seconds", 60)))
    return {"proved": True}


@register_kind("service-exit")
def _service_exit(task, options):
    import os

    os._exit(17)


def run_cli(capsys, *argv: str):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestWorkerPool:
    def test_results_match_the_cold_engine(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        cold = BatchEngine().run([task])[0]
        with WorkerPool(workers=1) as pool:
            warm = pool.submit(task)
        assert warm.outcome == "ok"
        assert warm.proved == cold.proved
        assert dict(warm.payload) == dict(cold.payload)

    def test_repeated_requests_splice_and_get_faster(self):
        # A program with a recursive component: its cold analysis is far
        # above scheduler noise, so the splice-vs-cold ratio is stable.
        task = AnalysisTask(name="toy", source=HEAVY, kind="assertion")
        with WorkerPool(workers=1) as pool:
            first = pool.submit(task)
            repeat = pool.submit(task)
            stats = pool.stats_dict()
        assert first.outcome == repeat.outcome == "ok"
        assert first.proved == repeat.proved
        # The repeat splices every summary: well below the from-scratch run.
        assert repeat.wall_time < first.wall_time / 2
        assert stats["procedures_reused"] >= 2

    def test_edited_program_reuses_the_unchanged_procedures(self):
        edited = CHAIN.replace("return leaf(n) + 1;", "return leaf(n) + 2;")
        with WorkerPool(workers=1) as pool:
            pool.submit(AnalysisTask(name="v1", source=CHAIN, kind="assertion"))
            reused_before = pool.stats_dict()["procedures_reused"]
            pool.submit(AnalysisTask(name="v2", source=edited, kind="assertion"))
            reused_after = pool.stats_dict()["procedures_reused"]
        assert reused_after > reused_before  # leaf was spliced, not re-run

    def test_timeout_replaces_the_worker_and_keeps_serving(self):
        with WorkerPool(workers=1, timeout=0.5) as pool:
            hung = pool.submit(
                AnalysisTask(
                    name="hang",
                    source="",
                    kind="service-sleep",
                    params=(("seconds", 60),),
                )
            )
            assert hung.outcome == "timeout"
            after = pool.submit(
                AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
            )
            assert after.outcome == "ok"
            assert pool.stats_dict()["restarts"] == 1

    def test_worker_death_is_a_crash_not_a_hang(self):
        with WorkerPool(workers=1) as pool:
            dead = pool.submit(AnalysisTask(name="die", source="", kind="service-exit"))
            assert dead.outcome == "crash"
            assert "17" in dead.detail
            after = pool.submit(
                AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
            )
            assert after.outcome == "ok"

    def test_analysis_error_keeps_the_worker(self):
        with WorkerPool(workers=1) as pool:
            bad = pool.submit(AnalysisTask(name="bad", source="int (", kind="analyze"))
            assert bad.outcome == "error"
            assert pool.stats_dict()["restarts"] == 0

    def test_pool_uses_the_result_cache(self):
        cache = ResultCache(storage=MemoryStorage())
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion", suite="toy")
        with WorkerPool(workers=1, cache=cache) as pool:
            first = pool.submit(task)
            second = pool.submit(task)
        assert not first.cache_hit and second.cache_hit
        assert dict(second.payload) == dict(first.payload)
        assert cache.stats()["suites"] == {"toy": 1}

    def test_timeout_zero_is_immediate_and_keeps_the_worker(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        with WorkerPool(workers=1, timeout=0) as pool:
            result = pool.submit(task)
            stats = pool.stats_dict()
        assert result.outcome == "timeout"
        assert "0s deadline" in result.detail
        # The deadline fires before a worker is engaged, so none is killed.
        assert stats["restarts"] == 0
        assert stats["timeouts"] == 1

    def test_memo_snapshot_survives_a_pool_restart(self, tmp_path):
        from repro.polyhedra.cache import clear_caches

        # Forked workers inherit this process's memo tables; start them
        # empty so the snapshot accounting below is exact.
        clear_caches(force=True)
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        cache = ResultCache(tmp_path)
        with WorkerPool(workers=1, cache=cache) as pool:
            assert pool.submit(task).outcome == "ok"
        stats = cache.memo_snapshot_stats()
        assert stats["present"] and stats["entries"] > 0
        # A fresh pool (a service restart) loads the persisted memo tables;
        # a distinct program keeps the request off the result-cache path so
        # a worker is actually engaged.
        other = AnalysisTask(name="toy2", source=CHAIN, kind="assertion")
        with WorkerPool(workers=1, cache=cache) as pool:
            assert pool.submit(other).outcome == "ok"
            loaded = pool.stats_dict()["memo_snapshot_entries_loaded"]
        assert loaded == stats["entries"]

    def test_run_preserves_task_order(self):
        tasks = [
            AnalysisTask(name=f"t{i}", source=TRIVIAL, kind="assertion")
            for i in range(5)
        ]
        with WorkerPool(workers=2) as pool:
            results = pool.run(tasks)
        assert [result.name for result in results] == [task.name for task in tasks]

    def test_unexpected_submit_error_never_leaks_the_worker_slot(self, monkeypatch):
        """Regression: only Timeout/ConnectionError used to re-account the
        worker; any other exception from ``request`` leaked the slot and
        permanently shrank the pool (the next submit would block forever on
        a one-worker pool)."""
        from repro.service.pool import _WarmWorker

        with WorkerPool(workers=1) as pool:
            original = _WarmWorker.request

            def explodes(self, task, timeout):
                raise RuntimeError("surprise failure between checkout and reply")

            monkeypatch.setattr(_WarmWorker, "request", explodes)
            with pytest.raises(RuntimeError, match="surprise"):
                pool.submit(AnalysisTask(name="boom", source=TRIVIAL, kind="assertion"))
            monkeypatch.setattr(_WarmWorker, "request", original)
            # The slot was replaced, not leaked: the pool still serves.
            after = pool.submit(
                AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
            )
            assert after.outcome == "ok"
            assert pool.stats_dict()["restarts"] == 1

    def test_memo_snapshot_can_be_disabled_per_pool(self, tmp_path):
        """Regression: ``--engine warm --no-memo-snapshot`` used to be
        silently ignored — the pool loaded the snapshot regardless."""
        cache = ResultCache(tmp_path)
        with WorkerPool(workers=1, cache=cache) as default_pool:
            assert default_pool.memo_storage is not None
        with WorkerPool(workers=1, cache=cache, memo_snapshot=False) as pool:
            assert pool.memo_storage is None
            # The incremental store is a separate mechanism and stays on.
            assert pool.incremental_storage is not None

    def test_workers_ignore_sigint(self):
        """A terminal Ctrl-C signals the whole foreground process group;
        workers dying from it would skip the clean-shutdown save of the
        memo snapshot and incremental store (regression: they used to)."""
        import pathlib
        import signal

        if not pathlib.Path("/proc").is_dir():
            pytest.skip("needs /proc to inspect signal dispositions")
        with WorkerPool(workers=1) as pool:
            # A served request guarantees the worker finished starting up
            # (the SIG_IGN is installed before the ready handshake).
            assert (
                pool.submit(
                    AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
                ).outcome
                == "ok"
            )
            worker = pool._all[0]
            status = pathlib.Path(f"/proc/{worker.process.pid}/status").read_text()
            line = next(l for l in status.splitlines() if l.startswith("SigIgn"))
            ignored = int(line.split()[1], 16)
        assert ignored & (1 << (signal.SIGINT - 1))

    def test_incremental_store_survives_a_pool_restart(self, tmp_path):
        """Tentpole: a restarted service splices every component on its
        first repeated request, from the persisted incremental store."""
        cache = ResultCache(tmp_path)
        with WorkerPool(workers=1, cache=cache) as pool:
            assert (
                pool.submit(
                    AnalysisTask(name="v1", source=CHAIN, kind="assertion")
                ).outcome
                == "ok"
            )
            assert pool.stats_dict()["procedures_reused"] == 0
        stats = cache.incremental_store_stats()
        assert stats["present"] and stats["components"] == 3
        # A fresh pool (a service restart); the same program under a
        # different kind misses the result cache, so a worker actually
        # runs — and splices every component from the restored store.
        with WorkerPool(workers=1, cache=cache) as pool:
            result, meta = pool.submit_with_meta(
                AnalysisTask(name="v1", source=CHAIN, kind="analyze")
            )
            counters = pool.stats_dict()
        assert result.outcome == "ok"
        assert counters["incremental_store_components_loaded"] == 3
        assert counters["procedures_reused"] == 3
        assert meta["incremental"]["analyzed"] == []
        assert set(meta["incremental"]["reused"]) == {"leaf", "mid", "main"}


class TestAnalysisServer:
    @pytest.fixture()
    def server(self):
        pool = WorkerPool(workers=1)
        server = AnalysisServer(pool, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.close()
        thread.join(5)

    def _post(self, server, document, content_type="application/json"):
        host, port = server.address
        data = (
            document.encode("utf-8")
            if isinstance(document, str)
            else json.dumps(document).encode("utf-8")
        )
        request = urllib.request.Request(
            f"http://{host}:{port}/analyze",
            data=data,
            headers={"Content-Type": content_type},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read())

    def _get(self, server, path):
        host, port = server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_analyze_returns_the_cli_json_record(self, server):
        record = self._post(server, {"source": TRIVIAL})
        assert record["outcome"] == "ok"
        assert record["proved"] is True
        assert set(record) >= {"name", "kind", "outcome", "payload", "wall_time"}
        assert record["payload"]["assertions"][0]["proved"] is True

    def test_repeated_requests_are_warm(self, server):
        self._post(server, {"source": CHAIN})
        started = time.perf_counter()
        record = self._post(server, {"source": CHAIN})
        elapsed = time.perf_counter() - started
        assert record["outcome"] == "ok"
        assert elapsed < 1.0  # cold analysis of CHAIN takes far longer
        stats = self._get(server, "/stats")
        assert stats["pool"]["procedures_reused"] >= 3

    def test_plain_text_body_is_program_source(self, server):
        record = self._post(server, TRIVIAL, content_type="text/plain")
        assert record["outcome"] == "ok"

    def test_healthz(self, server):
        assert self._get(server, "/healthz") == {"status": "ok", "workers": 1}

    def test_bad_requests_get_400(self, server):
        host, port = server.address
        for body in (b"{not json", b"{}", b'{"source": 3}', b'["list"]'):
            request = urllib.request.Request(
                f"http://{host}:{port}/analyze",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=30)
            assert error.value.code == 400

    def test_non_integral_substitutions_get_400(self, server):
        """Regression: ``{"n": 2.7}`` used to be silently truncated to 2
        and booleans accepted as 0/1."""
        host, port = server.address
        for substitutions in ({"n": 2.7}, {"n": True}, {"n": None}):
            request = urllib.request.Request(
                f"http://{host}:{port}/analyze",
                data=json.dumps(
                    {"source": TRIVIAL, "substitutions": substitutions}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=30)
            assert error.value.code == 400
            assert "integer" in json.load(error.value)["error"]["message"]
        # Integral values in any JSON spelling still work.
        record = self._post(
            server, {"source": TRIVIAL, "substitutions": {"n": 2.0, "m": "3"}}
        )
        assert record["outcome"] == "ok"

    def test_unknown_path_is_404(self, server):
        host, port = server.address
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=30)
        assert error.value.code == 404

    def test_closed_pool_is_a_500_json_error_not_a_dropped_connection(self, server):
        """Regression: an exception out of ``pool.submit`` used to escape
        ``do_POST``, dropping the connection with a stderr traceback."""
        server.pool.close()
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/analyze",
            data=json.dumps({"source": TRIVIAL}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=30)
        assert error.value.code == 500
        envelope = json.load(error.value)
        assert envelope["error"]["code"] == "internal"
        assert "closed" in envelope["error"]["message"]


class TestBatchRoute:
    @pytest.fixture()
    def server(self):
        pool = WorkerPool(workers=2)
        server = AnalysisServer(pool, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.close()
        thread.join(5)

    def _post_batch(self, server, document):
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/batch",
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=600) as response:
            return json.loads(response.read())

    @staticmethod
    def _semantic(record):
        """Everything of a result record except the run-dependent fields."""
        return {
            key: value
            for key, value in record.items()
            if key not in ("wall_time", "cache_hit")
        }

    def test_suite_by_name_is_bit_identical_to_repro_bench(self, server, capsys):
        document = self._post_batch(server, {"suite": "table2"})
        assert document["suite"] == "table2"
        assert document["totals"]["ok"] == document["totals"]["total"] == 3
        code, out, _ = run_cli(
            capsys, "bench", "--suite", "table2", "--no-cache", "--json"
        )
        assert code == 0
        bench = json.loads(out)
        assert [self._semantic(r) for r in document["results"]] == [
            self._semantic(r) for r in bench["results"]
        ]

    def test_per_task_incremental_splice_summary(self, server):
        # Two copies of one program: the second splices what the first built
        # (both land on the same worker only with workers=1, so assert on
        # the union across the batch instead of a specific record).
        tasks = [
            {"name": "first", "source": CHAIN, "kind": "assertion"},
            {"name": "second", "source": CHAIN, "kind": "analyze"},
        ]
        document = self._post_batch(server, {"tasks": tasks})
        assert [entry["name"] for entry in document["incremental"]] == [
            "first",
            "second",
        ]
        for entry in document["incremental"]:
            assert set(entry) == {"name", "cache_hit", "analyzed", "reused"}
        touched = set()
        for entry in document["incremental"]:
            touched.update(entry["analyzed"])
            touched.update(entry["reused"])
        assert touched == {"leaf", "mid", "main"}

    def test_bare_json_list_is_an_inline_task_list(self, server):
        document = self._post_batch(
            server, [{"source": TRIVIAL, "kind": "assertion", "name": "one"}]
        )
        assert document["suite"] is None
        assert document["totals"] == {
            "total": 1,
            "ok": 1,
            "proved": 1,
            "timeout": 0,
            "error": 0,
            "crash": 0,
            "pending": 0,
            "cache_hits": 0,
            "wall_time": document["totals"]["wall_time"],
        }

    def test_malformed_batch_bodies_get_400(self, server):
        host, port = server.address
        bodies = [
            {"suite": "nope"},
            {"suite": 3},
            {"tasks": []},
            {"tasks": [{"source": ""}]},
            {"tasks": "not-a-list"},
            {"suite": "table2", "depth": 3},  # --depth needs the unroller
            {"suite": "table2", "depth": 2.5, "tool": "unrolling"},
        ]
        for body in bodies:
            request = urllib.request.Request(
                f"http://{host}:{port}/batch",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=30)
            assert error.value.code == 400, body


def _start_server(pool, **kwargs):
    server = AnalysisServer(pool, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop_server(server, thread):
    server.shutdown()
    server.close()
    thread.join(5)


class TestV1Api:
    @pytest.fixture()
    def server(self):
        server, thread = _start_server(WorkerPool(workers=1))
        yield server
        _stop_server(server, thread)

    def _url(self, server):
        host, port = server.address
        return f"http://{host}:{port}"

    def test_v1_routes_answer_without_deprecation(self, server):
        host, port = server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/healthz", timeout=30
        ) as response:
            assert json.loads(response.read()) == {"status": "ok", "workers": 1}
            assert response.headers.get("Deprecation") is None
            assert response.headers.get("X-Request-Id")

    def test_legacy_aliases_answer_with_deprecation_and_successor(self, server):
        host, port = server.address
        for name in ("healthz", "stats", "metrics"):
            with urllib.request.urlopen(
                f"http://{host}:{port}/{name}", timeout=30
            ) as response:
                assert response.status == 200, name
                assert response.headers["Deprecation"] == "true"
                assert f"/v1/{name}" in response.headers["Link"]
                assert "successor-version" in response.headers["Link"]

    def test_error_envelope_shape(self, server):
        host, port = server.address
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"http://{host}:{port}/v1/nope", timeout=30)
        assert error.value.code == 404
        envelope = json.load(error.value)
        assert set(envelope) == {"error", "request_id"}
        assert set(envelope["error"]) == {"code", "message", "detail"}
        assert envelope["error"]["code"] == "not_found"
        assert envelope["request_id"] == error.value.headers["X-Request-Id"]

    def test_wrong_method_is_405_with_allow(self, server):
        host, port = server.address
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"http://{host}:{port}/v1/analyze", timeout=30)
        assert error.value.code == 405
        assert error.value.headers["Allow"] == "POST"
        assert json.load(error.value)["error"]["code"] == "method_not_allowed"

    def test_request_ids_are_distinct_per_request(self, server):
        host, port = server.address
        seen = set()
        for _ in range(3):
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/healthz", timeout=30
            ) as response:
                seen.add(response.headers["X-Request-Id"])
        assert len(seen) == 3

    def test_pipelined_requests_answer_in_order(self, server):
        """Two requests written back-to-back before reading: both answered,
        in order, on the one connection."""
        host, port = server.address
        with socket.create_connection((host, port), timeout=30) as sock:
            request = (
                f"GET /v1/healthz HTTP/1.1\r\nHost: {host}\r\n\r\n"
                f"GET /v1/metrics HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n"
            )
            sock.sendall(request.encode("ascii"))
            payload = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                payload += chunk
        text = payload.decode("utf-8")
        assert text.count("HTTP/1.1 200 OK") == 2
        # The healthz body precedes the metrics body.
        assert text.index('"status"') < text.index('"uptime_seconds"')

    def test_client_prefers_v1(self, server):
        with ServiceClient(self._url(server)) as client:
            response = client.healthz()
            assert response.document["status"] == "ok"
            assert not response.deprecated

    def test_batch_via_client_matches_direct_post(self, server):
        tasks = [{"name": "toy", "source": TRIVIAL, "kind": "assertion"}]
        with ServiceClient(self._url(server)) as client:
            document = client.batch({"tasks": tasks}).document
        assert document["totals"]["ok"] == 1


class TestBackpressure:
    def test_saturated_queue_gets_429_with_retry_after(self):
        """Acceptance: a full admission queue answers 429 immediately —
        never an unbounded hang — and the slot is reclaimed afterwards."""
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool, backlog=0)
        host, port = server.address
        url = f"http://{host}:{port}"
        try:
            assert server.capacity == 1
            occupied = threading.Thread(
                target=lambda: ServiceClient(url).analyze(
                    {
                        "source": "ignored",
                        "kind": "service-sleep",
                        "params": {"seconds": 3},
                    }
                ),
                daemon=True,
            )
            occupied.start()
            # Wait until the sleeper is actually admitted.
            with ServiceClient(url) as client:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    metrics = client.metrics().document
                    if metrics["queue"]["in_flight"] == 1:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("the sleeper request was never admitted")
                with pytest.raises(ServiceHTTPError) as error:
                    client.analyze({"source": TRIVIAL})
                assert error.value.status == 429
                assert error.value.code == "queue_full"
                assert error.value.retry_after is not None
                assert error.value.retry_after >= 1
                assert error.value.detail["capacity"] == 1
                occupied.join(30)
                # The slot is reclaimed: the same request is served now.
                record = client.analyze({"source": TRIVIAL}).document
                assert record["outcome"] == "ok"
                assert client.metrics().document["rejected_429"] == 1
        finally:
            _stop_server(server, thread)

    def test_non_admission_routes_answer_while_saturated(self):
        """healthz/metrics bypass admission: the SLO surface stays
        observable exactly when the service is overloaded."""
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool, backlog=0)
        host, port = server.address
        url = f"http://{host}:{port}"
        try:
            occupied = threading.Thread(
                target=lambda: ServiceClient(url).analyze(
                    {
                        "source": "ignored",
                        "kind": "service-sleep",
                        "params": {"seconds": 2},
                    }
                ),
                daemon=True,
            )
            occupied.start()
            with ServiceClient(url) as client:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.metrics().document["queue"]["in_flight"] == 1:
                        break
                    time.sleep(0.02)
                assert client.healthz().document["status"] == "ok"
                assert client.stats().document["pool"]["workers"] == 1
            occupied.join(30)
        finally:
            _stop_server(server, thread)


class TestDeadlines:
    def test_expired_deadline_is_504_and_the_slot_is_reclaimed(self):
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool)
        host, port = server.address
        url = f"http://{host}:{port}"
        try:
            with ServiceClient(url) as client:
                with pytest.raises(ServiceHTTPError) as error:
                    client.analyze(
                        {
                            "source": "ignored",
                            "kind": "service-sleep",
                            "params": {"seconds": 60},
                        },
                        deadline_ms=300,
                    )
                assert error.value.status == 504
                assert error.value.code == "deadline_exceeded"
                assert error.value.detail["deadline_ms"] == 300
                assert error.value.detail["result"]["outcome"] == "timeout"
                # The hung worker was killed and replaced, and the
                # admission slot released: the service still serves.
                record = client.analyze({"source": TRIVIAL}).document
                assert record["outcome"] == "ok"
                metrics = client.metrics().document
                assert metrics["deadline_504"] == 1
                assert metrics["queue"]["in_flight"] == 0
            assert pool.stats_dict()["restarts"] == 1
        finally:
            _stop_server(server, thread)

    def test_body_deadline_field_works_like_the_header(self):
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool)
        host, port = server.address
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/analyze",
                data=json.dumps(
                    {
                        "source": "ignored",
                        "kind": "service-sleep",
                        "params": {"seconds": 60},
                        "deadline_ms": 300,
                    }
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=60)
            assert error.value.code == 504
            assert json.load(error.value)["error"]["code"] == "deadline_exceeded"
        finally:
            _stop_server(server, thread)

    def test_deadline_tightens_but_never_extends_the_pool_timeout(self):
        """A client deadline far above the operator's --timeout must not
        extend it: the pool's own shorter deadline still fires, and that
        is a 200 timeout record (the service kept its own SLO), not 504."""
        pool = WorkerPool(workers=1, timeout=0.3)
        server, thread = _start_server(pool)
        host, port = server.address
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                record = client.analyze(
                    {
                        "source": "ignored",
                        "kind": "service-sleep",
                        "params": {"seconds": 60},
                    },
                    deadline_ms=60_000,
                ).document
            assert record["outcome"] == "timeout"
            assert "0.3" in record["detail"]
        finally:
            _stop_server(server, thread)

    def test_malformed_deadlines_are_400(self):
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool)
        host, port = server.address
        try:
            for value in ("nope", "-5", "0"):
                request = urllib.request.Request(
                    f"http://{host}:{port}/v1/analyze",
                    data=json.dumps({"source": TRIVIAL}).encode("utf-8"),
                    headers={
                        "Content-Type": "application/json",
                        "X-Repro-Deadline-Ms": value,
                    },
                )
                with pytest.raises(urllib.error.HTTPError) as error:
                    urllib.request.urlopen(request, timeout=30)
                assert error.value.code == 400, value
                assert json.load(error.value)["error"]["code"] == "bad_request"
        finally:
            _stop_server(server, thread)

    def test_batch_deadline_bounds_the_whole_batch(self):
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool)
        host, port = server.address
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                with pytest.raises(ServiceHTTPError) as error:
                    client.batch(
                        {
                            "tasks": [
                                {
                                    "name": f"sleep{i}",
                                    "source": "ignored",
                                    "kind": "service-sleep",
                                    "params": {"seconds": 60},
                                }
                                for i in range(2)
                            ]
                        },
                        deadline_ms=500,
                    )
                assert error.value.status == 504
                assert error.value.code == "deadline_exceeded"
                assert error.value.detail["totals"]["timeout"] >= 1
        finally:
            _stop_server(server, thread)


class TestMetrics:
    def test_percentiles_under_concurrent_keep_alive_clients(self):
        pool = WorkerPool(workers=2)
        server, thread = _start_server(pool)
        host, port = server.address
        url = f"http://{host}:{port}"
        requests_per_client, clients = 4, 3
        try:
            def hammer():
                with ServiceClient(url) as client:
                    for _ in range(requests_per_client):
                        assert (
                            client.analyze({"source": TRIVIAL}).document["outcome"]
                            == "ok"
                        )

            threads = [
                threading.Thread(target=hammer, daemon=True) for _ in range(clients)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(120)
            with ServiceClient(url) as client:
                metrics = client.metrics().document
            analyze = metrics["routes"]["analyze"]
            total = requests_per_client * clients
            assert analyze["count"] == total
            assert analyze["window"] == total
            assert 0 < analyze["p50_ms"] <= analyze["p95_ms"] <= analyze["p99_ms"]
            assert analyze["p99_ms"] <= analyze["max_ms"]
            assert metrics["responses"]["2xx"] >= total
            assert metrics["queue"]["capacity"] == pool.workers + server.backlog
            assert metrics["queue"]["in_flight"] == 0
            assert 0.0 <= metrics["workers"]["utilisation"] <= 1.0
            assert metrics["workers"]["total"] == 2
        finally:
            _stop_server(server, thread)

    def test_error_responses_are_counted_by_class(self):
        pool = WorkerPool(workers=1)
        server, thread = _start_server(pool)
        host, port = server.address
        try:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/v1/nope", timeout=30)
            with ServiceClient(f"http://{host}:{port}") as client:
                metrics = client.metrics().document
            assert metrics["responses"]["4xx"] >= 1
        finally:
            _stop_server(server, thread)


class TestLoadtestCli:
    @pytest.fixture()
    def server(self):
        server, thread = _start_server(WorkerPool(workers=2))
        yield server
        _stop_server(server, thread)

    def _url(self, server):
        host, port = server.address
        return f"http://{host}:{port}"

    def test_loadtest_records_a_bench_entry(self, server, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "loadtest",
            "--url", self._url(server),
            "--rps", "15",
            "--duration", "1.5",
            "--concurrency", "3",
            "--perf-dir", str(tmp_path),
            "--label", "test",
        )
        assert code == 0
        assert "served" in out and "latency p50" in out
        from repro.engine.profile import load_entries

        entries = load_entries(tmp_path / "BENCH_service.json")
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "service"
        assert entry["label"] == "test"
        assert entry["totals"]["served_2xx"] > 0
        assert entry["totals"]["throughput_rps"] > 0
        report = entry["report"]
        assert report["latency"]["p50_ms"] is not None
        assert report["latency"]["p95_ms"] is not None
        assert report["latency"]["p99_ms"] is not None
        names = {row["name"] for row in entry["rows"]}
        assert names == {"analyze/p50", "analyze/p95", "analyze/p99"}

    def test_no_record_leaves_the_perf_dir_alone(self, server, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "loadtest",
            "--url", self._url(server),
            "--rps", "10",
            "--duration", "1",
            "--perf-dir", str(tmp_path),
            "--no-record",
            "--json",
        )
        assert code == 0
        assert not (tmp_path / "BENCH_service.json").exists()
        report = json.loads(out)
        assert report["served_2xx"] == report["requested"]

    def test_unreachable_service_is_exit_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "loadtest",
            "--url", "http://127.0.0.1:1",
            "--rps", "5",
            "--duration", "0.5",
            "--perf-dir", str(tmp_path),
            "--no-record",
        )
        assert code == 2
        assert "no request completed" in err


class TestServeBindFailure:
    def test_bind_failure_leaks_no_workers(self):
        """Regression: ``serve()`` used to fork the pool before binding, so
        a busy port leaked the workers forever."""
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            before = set(multiprocessing.active_children())
            with pytest.raises(OSError):
                serve(port=port)
            assert set(multiprocessing.active_children()) == before
        finally:
            blocker.close()

    def test_cli_serve_reports_the_busy_port(self, capsys):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code, _, err = run_cli(
                capsys, "serve", "--port", str(port), "--workers", "1"
            )
            assert code == 2
            assert "cannot bind" in err
        finally:
            blocker.close()


class TestServiceRestart:
    def _request(self, server, path, document):
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=600) as response:
            return json.loads(response.read())

    def _stats(self, server):
        host, port = server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}/stats", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_restarted_service_splices_on_its_first_repeated_request(
        self, tmp_path
    ):
        """Acceptance: serve -> stop cleanly -> serve -> the first repeated
        request splices every component, visible in /stats."""
        cache = ResultCache(tmp_path)

        server = AnalysisServer(WorkerPool(workers=1, cache=cache), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        record = self._request(server, "/analyze", {"source": CHAIN, "kind": "assertion"})
        assert record["outcome"] == "ok"
        assert self._stats(server)["pool"]["procedures_reused"] == 0
        server.shutdown()
        server.close()  # clean stop: workers persist their stores
        thread.join(5)

        server = AnalysisServer(WorkerPool(workers=1, cache=cache), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Same program, different kind: misses the result cache, so the
            # restarted worker runs — and splices everything it restored.
            record = self._request(
                server, "/analyze", {"source": CHAIN, "kind": "analyze"}
            )
            assert record["outcome"] == "ok"
            stats = self._stats(server)["pool"]
            assert stats["incremental_store_components_loaded"] == 3
            assert stats["procedures_reused"] == 3
            assert stats["procedures_analyzed"] == 0
        finally:
            server.shutdown()
            server.close()
            thread.join(5)


class TestBatchCli:
    @pytest.fixture()
    def server(self):
        pool = WorkerPool(workers=2)
        server = AnalysisServer(pool, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.close()
        thread.join(5)

    def _url(self, server):
        host, port = server.address
        return f"http://{host}:{port}"

    def test_remote_suite_matches_local_bench_output(self, server, capsys):
        code, out, _ = run_cli(
            capsys, "batch", "--url", self._url(server), "--suite", "table2", "--json"
        )
        assert code == 0
        remote = json.loads(out)
        assert remote["suite"] == "table2"
        assert remote["totals"]["ok"] == remote["totals"]["total"] == 3
        code, out, _ = run_cli(
            capsys, "bench", "--suite", "table2", "--no-cache", "--json"
        )
        assert code == 0
        local = json.loads(out)
        semantic = lambda r: {  # noqa: E731
            k: v for k, v in r.items() if k not in ("wall_time", "cache_hit")
        }
        assert [semantic(r) for r in remote["results"]] == [
            semantic(r) for r in local["results"]
        ]

    def test_inline_task_file(self, server, capsys, tmp_path):
        tasks = tmp_path / "tasks.json"
        tasks.write_text(
            json.dumps([{"name": "toy", "source": TRIVIAL, "kind": "assertion"}]),
            encoding="utf-8",
        )
        code, out, _ = run_cli(
            capsys, "batch", "--url", self._url(server), "--tasks", str(tasks)
        )
        assert code == 0
        assert "toy" in out and "1/1 ok" in out

    def test_suite_and_tasks_are_mutually_exclusive(self, server, capsys, tmp_path):
        code, _, err = run_cli(capsys, "batch", "--url", self._url(server))
        assert code == 2 and "exactly one" in err

    def test_suite_options_are_rejected_with_inline_tasks(
        self, server, capsys, tmp_path
    ):
        """Regression: --tool/--depth/--full with --tasks used to be
        silently ignored, mislabelling what actually ran."""
        tasks = tmp_path / "tasks.json"
        tasks.write_text(
            json.dumps([{"name": "toy", "source": TRIVIAL, "kind": "assertion"}]),
            encoding="utf-8",
        )
        for extra in (["--tool", "unrolling"], ["--depth", "8"], ["--full"]):
            code, _, err = run_cli(
                capsys,
                "batch", "--url", self._url(server), "--tasks", str(tasks), *extra,
            )
            assert code == 2, extra
            assert "--suite" in err

    def test_unreachable_service_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "batch",
            "--url",
            "http://127.0.0.1:1",
            "--suite",
            "table2",
            "--http-timeout",
            "2",
        )
        assert code == 2
        assert "cannot reach" in err

    def test_service_side_errors_are_reported(self, server, capsys, tmp_path):
        tasks = tmp_path / "tasks.json"
        tasks.write_text(json.dumps([{"source": 5}]), encoding="utf-8")
        code, _, err = run_cli(
            capsys, "batch", "--url", self._url(server), "--tasks", str(tasks)
        )
        assert code == 2
        assert "400" in err

    def test_non_object_error_bodies_are_reported_cleanly(self, capsys):
        """Regression: a proxy answering errors with a JSON array/string
        body used to raise AttributeError instead of the exit-2 report."""
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class ArrayError(BaseHTTPRequestHandler):
            def do_POST(self):
                body = json.dumps(["upstream unavailable"]).encode("utf-8")
                self.send_response(503)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), ArrayError)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            code, _, err = run_cli(
                capsys, "batch", "--url", f"http://{host}:{port}",
                "--suite", "table2",
            )
            assert code == 2
            assert "503" in err
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(5)


class TestWarmEngineCli:
    def test_bench_engine_warm_matches_pool_verdicts(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--engine",
            "warm",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "warm"),
            "--json",
        )
        assert code == 0
        warm = json.loads(out)
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--cache-dir",
            str(tmp_path / "cold"),
            "--json",
        )
        assert code == 0
        cold = json.loads(out)
        assert warm["engine"] == "warm"
        warm_verdicts = [
            (r["name"], r["outcome"], r["proved"]) for r in warm["results"]
        ]
        cold_verdicts = [
            (r["name"], r["outcome"], r["proved"]) for r in cold["results"]
        ]
        assert warm_verdicts == cold_verdicts

    def test_shard_requires_a_cache(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table2", "--shard", "1/2", "--no-cache"
        )
        assert code == 2
        assert "shared" in err

    def test_bad_shard_spec(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table2", "--shard", "5/2"
        )
        assert code == 2
        assert "shard" in err


class TestShardCli:
    def test_shards_reproduce_the_unsharded_suite(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--cache-dir",
            str(tmp_path / "reference"),
            "--json",
        )
        assert code == 0
        reference = json.loads(out)

        shared = tmp_path / "shared"
        views = []
        for index in (1, 2):
            code, out, _ = run_cli(
                capsys,
                "bench",
                "--suite",
                "table2",
                "--shard",
                f"{index}/2",
                "--cache-dir",
                str(shared),
                "--json",
            )
            view = json.loads(out)
            # Exit 3 = this shard succeeded but other shards' results are
            # still pending in the shared store; 0 = merged suite complete.
            assert code == (3 if view["totals"]["pending"] else 0)
            views.append(view)

        final = views[-1]
        assert final["totals"]["pending"] == 0
        assert [r["name"] for r in final["results"]] == [
            r["name"] for r in reference["results"]
        ]
        for sharded, unsharded in zip(final["results"], reference["results"]):
            assert sharded["outcome"] == unsharded["outcome"] == "ok"
            assert sharded["proved"] == unsharded["proved"]
            assert sharded["payload"] == unsharded["payload"]
