"""The warm analysis service: worker pool, HTTP endpoint, CLI integration.

Covers the tentpole acceptance properties: warm workers answer repeated
requests from spliced summaries (measurably below a cold run), results
agree with the cold engine, failures replace workers without sinking the
service, and ``repro bench --engine warm`` / ``--shard`` round-trip through
the CLI.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.engine import AnalysisTask, BatchEngine, MemoryStorage, ResultCache
from repro.engine.tasks import register_kind
from repro.service import AnalysisServer, WorkerPool

TRIVIAL = "int main(int n) { assume(n >= 0); int r = n + 1; assert(r >= 1); return r; }"

CHAIN = """
int leaf(int n) { assume(n >= 0); return n + 1; }
int mid(int n) { assume(n >= 0); return leaf(n) + 1; }
int main(int n) { assume(n >= 0); int r = mid(n); assert(r >= 2); return r; }
"""


@register_kind("service-sleep")
def _service_sleep(task, options):
    time.sleep(float(task.param("seconds", 60)))
    return {"proved": True}


@register_kind("service-exit")
def _service_exit(task, options):
    import os

    os._exit(17)


def run_cli(capsys, *argv: str):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestWorkerPool:
    def test_results_match_the_cold_engine(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        cold = BatchEngine().run([task])[0]
        with WorkerPool(workers=1) as pool:
            warm = pool.submit(task)
        assert warm.outcome == "ok"
        assert warm.proved == cold.proved
        assert dict(warm.payload) == dict(cold.payload)

    def test_repeated_requests_splice_and_get_faster(self):
        task = AnalysisTask(name="toy", source=CHAIN, kind="assertion")
        with WorkerPool(workers=1) as pool:
            first = pool.submit(task)
            repeat = pool.submit(task)
            stats = pool.stats_dict()
        assert first.outcome == repeat.outcome == "ok"
        assert first.proved == repeat.proved
        # The repeat splices every summary: well below the from-scratch run.
        assert repeat.wall_time < first.wall_time / 2
        assert stats["procedures_reused"] >= 3

    def test_edited_program_reuses_the_unchanged_procedures(self):
        edited = CHAIN.replace("return leaf(n) + 1;", "return leaf(n) + 2;")
        with WorkerPool(workers=1) as pool:
            pool.submit(AnalysisTask(name="v1", source=CHAIN, kind="assertion"))
            reused_before = pool.stats_dict()["procedures_reused"]
            pool.submit(AnalysisTask(name="v2", source=edited, kind="assertion"))
            reused_after = pool.stats_dict()["procedures_reused"]
        assert reused_after > reused_before  # leaf was spliced, not re-run

    def test_timeout_replaces_the_worker_and_keeps_serving(self):
        with WorkerPool(workers=1, timeout=0.5) as pool:
            hung = pool.submit(
                AnalysisTask(
                    name="hang",
                    source="",
                    kind="service-sleep",
                    params=(("seconds", 60),),
                )
            )
            assert hung.outcome == "timeout"
            after = pool.submit(
                AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
            )
            assert after.outcome == "ok"
            assert pool.stats_dict()["restarts"] == 1

    def test_worker_death_is_a_crash_not_a_hang(self):
        with WorkerPool(workers=1) as pool:
            dead = pool.submit(AnalysisTask(name="die", source="", kind="service-exit"))
            assert dead.outcome == "crash"
            assert "17" in dead.detail
            after = pool.submit(
                AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
            )
            assert after.outcome == "ok"

    def test_analysis_error_keeps_the_worker(self):
        with WorkerPool(workers=1) as pool:
            bad = pool.submit(AnalysisTask(name="bad", source="int (", kind="analyze"))
            assert bad.outcome == "error"
            assert pool.stats_dict()["restarts"] == 0

    def test_pool_uses_the_result_cache(self):
        cache = ResultCache(storage=MemoryStorage())
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion", suite="toy")
        with WorkerPool(workers=1, cache=cache) as pool:
            first = pool.submit(task)
            second = pool.submit(task)
        assert not first.cache_hit and second.cache_hit
        assert dict(second.payload) == dict(first.payload)
        assert cache.stats()["suites"] == {"toy": 1}

    def test_timeout_zero_is_immediate_and_keeps_the_worker(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        with WorkerPool(workers=1, timeout=0) as pool:
            result = pool.submit(task)
            stats = pool.stats_dict()
        assert result.outcome == "timeout"
        assert "0s deadline" in result.detail
        # The deadline fires before a worker is engaged, so none is killed.
        assert stats["restarts"] == 0
        assert stats["timeouts"] == 1

    def test_memo_snapshot_survives_a_pool_restart(self, tmp_path):
        from repro.polyhedra.cache import clear_caches

        # Forked workers inherit this process's memo tables; start them
        # empty so the snapshot accounting below is exact.
        clear_caches(force=True)
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        cache = ResultCache(tmp_path)
        with WorkerPool(workers=1, cache=cache) as pool:
            assert pool.submit(task).outcome == "ok"
        stats = cache.memo_snapshot_stats()
        assert stats["present"] and stats["entries"] > 0
        # A fresh pool (a service restart) loads the persisted memo tables;
        # a distinct program keeps the request off the result-cache path so
        # a worker is actually engaged.
        other = AnalysisTask(name="toy2", source=CHAIN, kind="assertion")
        with WorkerPool(workers=1, cache=cache) as pool:
            assert pool.submit(other).outcome == "ok"
            loaded = pool.stats_dict()["memo_snapshot_entries_loaded"]
        assert loaded == stats["entries"]

    def test_run_preserves_task_order(self):
        tasks = [
            AnalysisTask(name=f"t{i}", source=TRIVIAL, kind="assertion")
            for i in range(5)
        ]
        with WorkerPool(workers=2) as pool:
            results = pool.run(tasks)
        assert [result.name for result in results] == [task.name for task in tasks]


class TestAnalysisServer:
    @pytest.fixture()
    def server(self):
        pool = WorkerPool(workers=1)
        server = AnalysisServer(pool, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.close()
        thread.join(5)

    def _post(self, server, document, content_type="application/json"):
        host, port = server.address
        data = (
            document.encode("utf-8")
            if isinstance(document, str)
            else json.dumps(document).encode("utf-8")
        )
        request = urllib.request.Request(
            f"http://{host}:{port}/analyze",
            data=data,
            headers={"Content-Type": content_type},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read())

    def _get(self, server, path):
        host, port = server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_analyze_returns_the_cli_json_record(self, server):
        record = self._post(server, {"source": TRIVIAL})
        assert record["outcome"] == "ok"
        assert record["proved"] is True
        assert set(record) >= {"name", "kind", "outcome", "payload", "wall_time"}
        assert record["payload"]["assertions"][0]["proved"] is True

    def test_repeated_requests_are_warm(self, server):
        self._post(server, {"source": CHAIN})
        started = time.perf_counter()
        record = self._post(server, {"source": CHAIN})
        elapsed = time.perf_counter() - started
        assert record["outcome"] == "ok"
        assert elapsed < 1.0  # cold analysis of CHAIN takes far longer
        stats = self._get(server, "/stats")
        assert stats["pool"]["procedures_reused"] >= 3

    def test_plain_text_body_is_program_source(self, server):
        record = self._post(server, TRIVIAL, content_type="text/plain")
        assert record["outcome"] == "ok"

    def test_healthz(self, server):
        assert self._get(server, "/healthz") == {"status": "ok", "workers": 1}

    def test_bad_requests_get_400(self, server):
        host, port = server.address
        for body in (b"{not json", b"{}", b'{"source": 3}'):
            request = urllib.request.Request(
                f"http://{host}:{port}/analyze",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=30)
            assert error.value.code == 400

    def test_unknown_path_is_404(self, server):
        host, port = server.address
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=30)
        assert error.value.code == 404


class TestWarmEngineCli:
    def test_bench_engine_warm_matches_pool_verdicts(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--engine",
            "warm",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "warm"),
            "--json",
        )
        assert code == 0
        warm = json.loads(out)
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--cache-dir",
            str(tmp_path / "cold"),
            "--json",
        )
        assert code == 0
        cold = json.loads(out)
        assert warm["engine"] == "warm"
        warm_verdicts = [
            (r["name"], r["outcome"], r["proved"]) for r in warm["results"]
        ]
        cold_verdicts = [
            (r["name"], r["outcome"], r["proved"]) for r in cold["results"]
        ]
        assert warm_verdicts == cold_verdicts

    def test_shard_requires_a_cache(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table2", "--shard", "1/2", "--no-cache"
        )
        assert code == 2
        assert "shared" in err

    def test_bad_shard_spec(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--suite", "table2", "--shard", "5/2"
        )
        assert code == 2
        assert "shard" in err


class TestShardCli:
    def test_shards_reproduce_the_unsharded_suite(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--suite",
            "table2",
            "--cache-dir",
            str(tmp_path / "reference"),
            "--json",
        )
        assert code == 0
        reference = json.loads(out)

        shared = tmp_path / "shared"
        views = []
        for index in (1, 2):
            code, out, _ = run_cli(
                capsys,
                "bench",
                "--suite",
                "table2",
                "--shard",
                f"{index}/2",
                "--cache-dir",
                str(shared),
                "--json",
            )
            view = json.loads(out)
            # Exit 3 = this shard succeeded but other shards' results are
            # still pending in the shared store; 0 = merged suite complete.
            assert code == (3 if view["totals"]["pending"] else 0)
            views.append(view)

        final = views[-1]
        assert final["totals"]["pending"] == 0
        assert [r["name"] for r in final["results"]] == [
            r["name"] for r in reference["results"]
        ]
        for sharded, unsharded in zip(final["results"], reference["results"]):
            assert sharded["outcome"] == unsharded["outcome"] == "ok"
            assert sharded["proved"] == unsharded["proved"]
            assert sharded["payload"] == unsharded["payload"]
