"""DAG-parallel determinism: parallel SCC scheduling is bit-identical to serial.

The scheduler's contract (see :mod:`repro.core.parallel`) is that the worker
count is *not* an analysis parameter: verdicts, bounds and rendered tables of
any program must be byte-for-byte the ones a serial run produces, at any
worker count, including through the incremental splice path.  This suite pins
that on the committed corpora:

* the benchmark suites (``table1`` / ``fig3`` / ``table2``), compared as the
  exact task payloads the engine caches and as the rendered report tables;
* every minimized fuzz reproducer in ``tests/regression/fuzz`` — programs
  selected adversarially, not for tidiness;
* a repeated run through :class:`~repro.core.incremental.IncrementalAnalyzer`
  with parallel workers, where cached components splice mid-schedule.

Worker counts 2 and 8 bracket the interesting regimes (fewer ready components
than workers, and more).  Payload ``summaries`` texts are excluded from the
comparison: like two serial runs of different request histories, parallel
runs may number fresh auxiliary symbols differently, which is exactly why no
verdict, bound or table may ever depend on the numbering.
"""

from pathlib import Path

import pytest

from repro.core import ChoraOptions
from repro.core import parallel as par
from repro.core.incremental import IncrementalAnalyzer
from repro.engine import AnalysisTask
from repro.engine.batch import BatchResult
from repro.engine.tasks import execute_task, set_program_analyzer
from repro.benchlib.suites import iter_suite
from repro.reporting.tables import render_table1, render_table2

def _parseable(path: Path) -> bool:
    """Reproducers pinned at parse time (e.g. the arity mismatch) never
    reach the scheduler — there is nothing to parallelise."""
    from repro.lang import parse_program
    from repro.lang.parser import ParseError

    try:
        parse_program(path.read_text())
    except ParseError:
        return False
    return True


FUZZ_CORPUS = [
    path
    for path in sorted(
        (Path(__file__).parent.parent / "regression" / "fuzz").glob("*.c")
    )
    if _parseable(path)
]

WORKER_COUNTS = (2, 8)

needs_fork = pytest.mark.skipif(
    not par.fork_available(), reason="os.fork not available"
)

pytestmark = needs_fork


@pytest.fixture
def scc_workers(monkeypatch):
    """Run the body under a pinned worker count, restoring serial after."""
    monkeypatch.delenv(par.PARALLEL_SCCS_ENV, raising=False)
    previous = par.set_parallel_sccs(None)

    def pin(workers):
        par.set_parallel_sccs(workers)

    yield pin
    par.set_parallel_sccs(previous)


def _comparable(payload: dict) -> dict:
    """The payload minus the symbol-numbering-sensitive summary texts."""
    return {key: value for key, value in payload.items() if key != "summaries"}


def _run(task: AnalysisTask, workers: int | None, pin) -> dict:
    pin(workers if workers is not None else 0)
    try:
        return execute_task(task, ChoraOptions())
    finally:
        pin(0)


def _suite_results(suite: str, workers, pin, full: bool = False):
    results = []
    for entry in iter_suite(suite, full):
        task = AnalysisTask.from_entry(entry, suite=suite)
        payload = _run(task, workers, pin)
        results.append(
            BatchResult(
                name=task.name,
                kind=task.kind,
                outcome="ok",
                wall_time=0.0,
                suite=suite,
                proved=payload.get("proved"),
                bound=payload.get("bound"),
                payload=payload,
            )
        )
    return results


class TestFuzzCorpusDeterminism:
    @pytest.mark.parametrize(
        "path", FUZZ_CORPUS, ids=[path.stem for path in FUZZ_CORPUS]
    )
    def test_corpus_program_payloads_match_serial(self, path, scc_workers):
        task = AnalysisTask(name=path.stem, source=path.read_text(), kind="analyze")
        serial = _run(task, None, scc_workers)
        for workers in WORKER_COUNTS:
            parallel = _run(task, workers, scc_workers)
            assert _comparable(parallel) == _comparable(serial), (
                f"{path.stem} diverged at {workers} workers"
            )
            # Summary *keys* (names and their order) must still match even
            # though the formula texts may number symbols differently.
            assert list(parallel.get("summaries", {})) == list(
                serial.get("summaries", {})
            )


class TestSuiteDeterminism:
    def test_table2_payloads_and_rendered_table(self, scc_workers):
        serial = _suite_results("table2", None, scc_workers)
        serial_table = render_table2(serial)
        for workers in WORKER_COUNTS:
            results = _suite_results("table2", workers, scc_workers)
            assert [r.payload for r in results] == [r.payload for r in serial]
            assert render_table2(results) == serial_table

    @pytest.mark.slow
    def test_table1_and_fig3_sweep(self, scc_workers):
        """The full fast-tier suite sweep at worker counts 1 / 2 / 8."""
        for suite, render in (("table1", render_table1), ("fig3", None)):
            serial = _suite_results(suite, None, scc_workers)
            for workers in (1,) + WORKER_COUNTS:
                results = _suite_results(suite, workers, scc_workers)
                assert [r.payload for r in results] == [
                    r.payload for r in serial
                ], f"{suite} diverged at {workers} workers"
                if render is not None:
                    assert render(results) == render(serial)


class TestIncrementalSpliceDeterminism:
    def test_corpus_through_parallel_incremental_analyzer(self, scc_workers):
        """A warm store must splice mid-schedule without changing verdicts:
        second runs answer every component from cache, first runs fork."""
        serial_payloads = {}
        for path in FUZZ_CORPUS:
            task = AnalysisTask(
                name=path.stem, source=path.read_text(), kind="analyze"
            )
            serial_payloads[path.stem] = _comparable(_run(task, None, scc_workers))

        analyzer = IncrementalAnalyzer(parallel_sccs=2)
        previous = set_program_analyzer(analyzer.analyze)
        try:
            for repeat in range(2):
                for path in FUZZ_CORPUS:
                    task = AnalysisTask(
                        name=path.stem, source=path.read_text(), kind="analyze"
                    )
                    payload = execute_task(task, ChoraOptions())
                    assert _comparable(payload) == serial_payloads[path.stem], (
                        f"{path.stem} diverged on incremental run {repeat}"
                    )
                # Second pass over an unchanged program: nothing re-analysed.
                if repeat == 1:
                    assert analyzer.last_report.analyzed == ()
                    assert analyzer.last_report.reused
        finally:
            set_program_analyzer(previous)
