"""Multi-machine bench on one box: --distribute, the shared cache plane,
straggler retry, and the 429 backpressure retry policy.

The acceptance contract of the distributed cache plane: ``repro bench
--distribute`` over two real ``repro serve`` instances sharing one
``RemoteStorage`` cache produces records bit-identical (up to wall time
and cache-hit counters) to a single-box ``repro bench`` — including when
one instance is dead and its shard fails over — and the shared store ends
up holding the fleet's memo snapshot, visible to ``repro cache stats
--cache-url``.
"""

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cli import main
from repro.engine import MemoryStorage, ResultCache
from repro.service import AnalysisServer, WorkerPool
from repro.service.client import ServiceClient, ServiceError, ServiceHTTPError
from repro.service.remote import RemoteStorage


def run_cli(capsys, *argv: str):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _semantic(record):
    """Everything of a result record except the run-dependent fields."""
    return {
        key: value
        for key, value in record.items()
        if key not in ("wall_time", "cache_hit")
    }


class _StubPool:
    """Enough pool for a cache-only AnalysisServer (no worker forks)."""

    workers = 1
    cache = None
    parallel_sccs = None

    def stats_dict(self):
        return {}

    def busy_workers(self):
        return 0

    def close(self):
        pass


def _start_server(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    url = f"http://{host}:{port}"
    _wait_until_serving(url)
    return thread, url


def _wait_until_serving(url, deadline=30.0):
    started = time.monotonic()
    while True:
        try:
            with ServiceClient(url, timeout=2.0) as client:
                client.healthz()
            return
        except ServiceError:
            if time.monotonic() - started > deadline:
                raise
            time.sleep(0.05)


def _stop_server(server, thread):
    server.shutdown()
    server.close()
    thread.join(10)


def _free_port():
    """A port that was just free — nothing listens on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture(scope="class")
def cache_host():
    """A cache-plane-only service backed by one in-memory store."""
    server = AnalysisServer(
        _StubPool(), port=0, cache=ResultCache(storage=MemoryStorage())
    )
    thread, url = _start_server(server)
    yield url
    _stop_server(server, thread)


class TestDistributedBench:
    def test_distribute_is_bit_identical_and_shares_the_cache_plane(
        self, cache_host, capsys
    ):
        code, out, _ = run_cli(
            capsys, "bench", "--suite", "table2", "--no-cache", "--json"
        )
        assert code == 0
        local = json.loads(out)

        fleet = []
        try:
            for _ in range(2):
                pool = WorkerPool(
                    workers=1, cache=ResultCache(storage=RemoteStorage(cache_host))
                )
                server = AnalysisServer(pool, port=0)
                thread, url = _start_server(server)
                fleet.append((server, thread, url))
            hosts = ",".join(url.removeprefix("http://") for _, _, url in fleet)
            code, out, err = run_cli(
                capsys, "bench", "--suite", "table2", "--distribute", hosts, "--json"
            )
            assert code == 0, err
            document = json.loads(out)
            assert document["engine"] == "distribute"
            assert all(report["ok"] for report in document["shards"])
            assert [_semantic(r) for r in document["results"]] == [
                _semantic(r) for r in local["results"]
            ]
            # The fleet wrote its results through the shared remote store.
            shared = RemoteStorage(cache_host)
            assert list(shared.names()), "no results reached the cache plane"
        finally:
            for server, thread, _ in fleet:
                _stop_server(server, thread)

        # Worker shutdown persisted the fleet's memo snapshot to the shared
        # store (the multi-machine warm start PR 5 left open)...
        from repro.polyhedra.cache import SNAPSHOT_NAME

        snapshot = RemoteStorage(cache_host).namespace("memo").read(SNAPSHOT_NAME)
        assert snapshot is not None
        # ...and `repro cache stats --cache-url` sees the same store.
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-url", cache_host)
        assert code == 0
        assert cache_host in out
        assert "polyhedra memo snapshot:" in out
        assert "memo snapshot: none" not in out

    def test_dead_host_shards_are_retried_on_the_survivor(
        self, cache_host, capsys
    ):
        code, out, _ = run_cli(
            capsys, "bench", "--suite", "table2", "--no-cache", "--json"
        )
        assert code == 0
        local = json.loads(out)

        pool = WorkerPool(
            workers=1, cache=ResultCache(storage=RemoteStorage(cache_host))
        )
        server = AnalysisServer(pool, port=0)
        thread, live_url = _start_server(server)
        dead = f"127.0.0.1:{_free_port()}"
        # Pin the dead host to a shard slot the suite actually hashes into,
        # so the coordinator must observe the failure and fail over.
        from repro.cli import suite_tasks
        from repro.engine.shard import shard_index

        occupied = shard_index(suite_tasks("table2", False)[0], 2)
        try:
            live = live_url.removeprefix("http://")
            pair = [live, live]
            pair[occupied - 1] = dead
            hosts = ",".join(pair)
            code, out, err = run_cli(
                capsys, "bench", "--suite", "table2", "--distribute", hosts, "--json"
            )
            assert code == 0, err
            document = json.loads(out)
            # Every shard was served, by the one surviving host.
            for report in document["shards"]:
                assert report["ok"]
                assert report["host"] == live_url
            assert [_semantic(r) for r in document["results"]] == [
                _semantic(r) for r in local["results"]
            ]
            assert "marking host dead" in err or "unreachable" in err
        finally:
            _stop_server(server, thread)

    def test_distribute_rejects_shard_and_bad_hosts(self, capsys):
        code, _, err = run_cli(
            capsys,
            "bench", "--suite", "table2",
            "--distribute", "127.0.0.1:1", "--shard", "1/2",
        )
        assert code == 2
        assert "mutually exclusive" in err
        code, _, err = run_cli(
            capsys,
            "bench", "--suite", "table2",
            "--distribute", "127.0.0.1:1,127.0.0.1:1",
        )
        assert code == 2
        assert "duplicate host" in err


# ---------------------------------------------------------------------- #
# 429 backpressure retry policy (client + CLI)
# ---------------------------------------------------------------------- #
class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers 429 (Retry-After: 0) ``fail_times`` times, then 200."""

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        self.rfile.read(length)
        self.server.requests += 1
        if self.server.requests <= self.server.fail_times:
            body = json.dumps(
                {
                    "error": {
                        "code": "queue_full",
                        "message": "busy",
                        "detail": {},
                    },
                    "request_id": f"r{self.server.requests}",
                }
            ).encode("utf-8")
            self.send_response(429)
            self.send_header("Retry-After", "0")
        else:
            body = json.dumps(self.server.document).encode("utf-8")
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *arguments):  # pragma: no cover - silence
        pass


def _scripted_server(fail_times, document):
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.fail_times = fail_times
    server.requests = 0
    server.document = document
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, thread, url


_OK_BATCH = {
    "suite": None,
    "engine": "warm",
    "results": [
        {
            "name": "toy",
            "suite": None,
            "kind": "assertion",
            "outcome": "ok",
            "proved": True,
            "bound": None,
            "wall_time": 0.01,
            "cache_hit": False,
            "detail": "",
            "payload": {"proved": True},
        }
    ],
    "incremental": [],
    "totals": {
        "total": 1, "ok": 1, "proved": 1, "timeout": 0,
        "error": 0, "crash": 0, "pending": 0, "cache_hits": 0,
        "wall_time": 0.01,
    },
}


class TestRetryAfter429:
    def test_client_retries_within_budget_and_succeeds(self):
        server, thread, url = _scripted_server(2, _OK_BATCH)
        try:
            with ServiceClient(url, timeout=10.0) as client:
                response = client.batch({"tasks": [{}]}, retries_429=2)
            assert response.status == 200
            assert server.requests == 3
        finally:
            server.shutdown()
            thread.join(5)

    def test_client_fails_fast_by_default(self):
        server, thread, url = _scripted_server(1, _OK_BATCH)
        try:
            with ServiceClient(url, timeout=10.0) as client:
                with pytest.raises(ServiceHTTPError) as excinfo:
                    client.batch({"tasks": [{}]})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 0.0
            assert server.requests == 1
        finally:
            server.shutdown()
            thread.join(5)

    def test_cli_batch_retry_budget_is_bounded(self, capsys):
        # An always-429 service: --retry-429 1 means exactly two attempts.
        server, thread, url = _scripted_server(10**6, _OK_BATCH)
        try:
            code, _, err = run_cli(
                capsys,
                "batch", "--url", url, "--suite", "table2", "--retry-429", "1",
            )
            assert code == 2
            assert "429" in err
            assert server.requests == 2
        finally:
            server.shutdown()
            thread.join(5)

    def test_cli_batch_recovers_after_backpressure(self, capsys):
        server, thread, url = _scripted_server(2, _OK_BATCH)
        try:
            code, out, err = run_cli(
                capsys, "batch", "--url", url, "--suite", "table2", "--json"
            )
            assert code == 0, err
            assert json.loads(out)["totals"]["ok"] == 1
            assert server.requests == 3
        finally:
            server.shutdown()
            thread.join(5)
