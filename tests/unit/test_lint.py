"""The semantic lint: every pass, the driver, the engine gate, the corpus.

One positive test per diagnostic code (with line-number assertions — line
attribution through the parser/AST/CFG is part of the contract), the
lint-clean property over every committed program (benchmark suites,
``examples/programs``, the fuzz regression corpus), Hypothesis mutation
tests (a clean program plus a seeded defect must produce the matching
code), and the ``REPRO_LINT_GATE`` engine gate, including its bit-identity
guarantee on clean programs.
"""

import importlib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.tasks import (
    AnalysisTask,
    InvalidProgram,
    LINT_GATE_ENV,
    execute_task,
)
from repro.formulas.symbols import reset_fresh_counter
from repro.lint import (
    Diagnostic,
    filter_diagnostics,
    has_errors,
    lint_source,
    sort_diagnostics,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = """\
int cost = 0;

int work(int n) {
    cost = cost + 1;
    if (n <= 1) {
        return 1;
    }
    return work(n - 1) + 1;
}

int main(int n) {
    assume(n > 0);
    int r = work(n);
    assert(r >= 1);
    return r;
}
"""


def codes(diagnostics):
    return {d.code for d in diagnostics}


def diagnostic(diagnostics, code):
    matches = [d for d in diagnostics if d.code == code]
    assert matches, f"no {code} in {[d.render() for d in diagnostics]}"
    return matches[0]


class TestPassPositives:
    """One crafted defect per code; the pass must fire on the right line."""

    def test_r000_parse_error_with_line(self):
        found = lint_source("int main(int n) {\n    return n +;\n}\n")
        d = diagnostic(found, "R000")
        assert d.severity == "error"
        assert d.line == 2
        assert "parse error" in d.message

    def test_r001_undeclared_read(self):
        found = lint_source("int main(int n) {\n    return x;\n}\n")
        d = diagnostic(found, "R001")
        assert d.severity == "error"
        assert d.line == 2
        assert d.procedure == "main"

    def test_r002_read_before_declaration(self):
        found = lint_source(
            "int main(int n) {\n"
            "    int y = t;\n"
            "    int t = 1;\n"
            "    return y + t;\n"
            "}\n"
        )
        d = diagnostic(found, "R002")
        assert d.severity == "warning"
        assert d.line == 2

    def test_r003_dead_store(self):
        found = lint_source(
            "int main(int n) {\n"
            "    int a = 0;\n"
            "    a = 5;\n"
            "    a = n;\n"
            "    return a;\n"
            "}\n"
        )
        d = diagnostic(found, "R003")
        assert d.severity == "info"
        assert d.line == 3

    def test_r003_exempts_vardecl_initializers(self):
        # `int retval = 0;` before an unconditional overwrite is the
        # defensive-initialization idiom of the benchmark suites.
        found = lint_source(
            "int main(int n) {\n"
            "    int a = 0;\n"
            "    a = n;\n"
            "    return a;\n"
            "}\n"
        )
        assert "R003" not in codes(found)

    def test_r004_unreachable_statement(self):
        found = lint_source(
            "int main(int n) {\n    return n;\n    n = 1;\n}\n"
        )
        d = diagnostic(found, "R004")
        assert d.severity == "warning"
        assert d.line == 3

    def test_r005_never_read_global(self):
        found = lint_source(
            "int g = 0;\n\nint main(int n) {\n    g = n;\n    return n;\n}\n"
        )
        d = diagnostic(found, "R005")
        assert d.severity == "info"

    def test_r006_assignment_to_undeclared(self):
        found = lint_source("int main(int n) {\n    x = 1;\n    return n;\n}\n")
        d = diagnostic(found, "R006")
        assert d.severity == "warning"
        assert d.line == 2

    def test_r101_unreachable_procedure(self):
        found = lint_source(
            "int helper(int n) {\n    return n;\n}\n\n"
            "int main(int n) {\n    return n;\n}\n"
        )
        d = diagnostic(found, "R101")
        assert d.severity == "info"
        assert d.procedure == "helper"

    def test_r102_no_base_case(self):
        found = lint_source(
            "int f(int n) {\n    return f(n - 1);\n}\n\n"
            "int main(int n) {\n    return f(n);\n}\n"
        )
        d = diagnostic(found, "R102")
        assert d.severity == "error"
        assert d.procedure == "f"

    def test_r103_no_progress_recursion(self):
        found = lint_source(
            "int f(int n) {\n"
            "    if (n <= 0) {\n"
            "        return 0;\n"
            "    }\n"
            "    return f(n);\n"
            "}\n\n"
            "int main(int n) {\n    return f(n);\n}\n"
        )
        d = diagnostic(found, "R103")
        assert d.severity == "warning"

    def test_r103_accepts_descending_and_halving(self):
        for call in ("f(n - 1)", "f(n / 2)", "f(n + 1)"):
            found = lint_source(
                "int f(int n) {\n"
                "    if (n <= 0) {\n"
                "        return 0;\n"
                "    }\n"
                f"    return {call};\n"
                "}\n\n"
                "int main(int n) {\n    return f(n);\n}\n"
            )
            assert "R103" not in codes(found), call

    def test_r104_nondet_free_infinite_loop(self):
        found = lint_source(
            "int main(int n) {\n"
            "    int x = 0;\n"
            "    while (1 <= 2) {\n"
            "        x = x + 1;\n"
            "    }\n"
            "    return x;\n"
            "}\n"
        )
        d = diagnostic(found, "R104")
        assert d.severity == "warning"
        assert d.line == 3

    def test_r104_quiet_when_body_can_escape(self):
        found = lint_source(
            "int main(int n) {\n"
            "    int x = 0;\n"
            "    while (1 <= 2) {\n"
            "        if (x > n) {\n"
            "            return x;\n"
            "        }\n"
            "        x = x + 1;\n"
            "    }\n"
            "    return x;\n"
            "}\n"
        )
        assert "R104" not in codes(found)

    def test_r201_constant_division_by_zero(self):
        found = lint_source("int main(int n) {\n    return n / 0;\n}\n")
        d = diagnostic(found, "R201")
        assert d.severity == "error"
        assert d.line == 2

    def test_r202_unsupported_divisor(self):
        found = lint_source("int main(int n) {\n    return n / n;\n}\n")
        d = diagnostic(found, "R202")
        assert d.severity == "error"
        assert d.line == 2

    def test_r203_always_true_condition(self):
        found = lint_source(
            "int main(int n) {\n"
            "    if (n == n) {\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        d = diagnostic(found, "R203")
        assert d.severity == "warning"
        assert d.line == 2

    def test_r204_always_false_condition(self):
        found = lint_source(
            "int main(int n) {\n"
            "    if (2 <= 1) {\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        d = diagnostic(found, "R204")
        assert d.severity == "warning"
        assert d.line == 2

    def test_r205_tautological_assume(self):
        found = lint_source(
            "int main(int n) {\n    assume(0 <= 1);\n    return n;\n}\n"
        )
        d = diagnostic(found, "R205")
        assert d.severity == "info"
        assert d.line == 2

    def test_r206_call_in_condition(self):
        found = lint_source(
            "int f(int n) {\n    return n;\n}\n\n"
            "int main(int n) {\n"
            "    if (f(n) > 0) {\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        d = diagnostic(found, "R206")
        assert d.severity == "error"
        assert d.line == 6

    def test_nondet_conditions_are_never_trivial(self):
        # `exists`-wrapped translations: a nondet condition must not be
        # claimed always-true or always-false in either polarity.
        found = lint_source(
            "int main(int n) {\n"
            "    if (*) {\n"
            "        return 1;\n"
            "    }\n"
            "    if (nondet(0, n) > 0) {\n"
            "        return 2;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        assert not codes(found) & {"R203", "R204", "R205"}


class TestDriverAndFilters:
    def test_clean_program_has_no_diagnostics(self):
        assert lint_source(CLEAN) == []

    def test_filter_by_severity(self):
        diagnostics = [
            Diagnostic("R001", "error", "a"),
            Diagnostic("R004", "warning", "b"),
            Diagnostic("R003", "info", "c"),
        ]
        assert [d.code for d in filter_diagnostics(diagnostics, "warning")] == [
            "R001",
            "R004",
        ]
        assert [d.code for d in filter_diagnostics(diagnostics, "error")] == ["R001"]

    def test_filter_by_disabled_codes(self):
        diagnostics = [
            Diagnostic("R001", "error", "a"),
            Diagnostic("R004", "warning", "b"),
        ]
        kept = filter_diagnostics(diagnostics, disabled_codes=("R001",))
        assert [d.code for d in kept] == ["R004"]

    def test_sort_deduplicates_and_orders_by_line(self):
        d1 = Diagnostic("R003", "info", "x", line=9)
        d2 = Diagnostic("R001", "error", "y", line=2)
        assert sort_diagnostics([d1, d2, d1]) == [d2, d1]

    def test_has_errors(self):
        assert has_errors([Diagnostic("R001", "error", "m")])
        assert not has_errors([Diagnostic("R004", "warning", "m")])

    def test_render_format(self):
        d = Diagnostic("R001", "error", "boom", line=3, procedure="main")
        assert d.render("a.c") == "a.c:3: error: R001: boom [main]"
        assert d.render() == "<source>:3: error: R001: boom [main]"


class TestCommittedProgramsLintClean:
    """Acceptance: zero diagnostics on every committed program."""

    def test_benchmark_suites(self):
        from repro.benchlib.suites import SUITES

        for suite in SUITES.values():
            for entry in suite.entries:
                found = lint_source(entry.source)
                assert found == [], (
                    suite.name,
                    entry.name,
                    [d.render() for d in found],
                )

    def test_example_programs(self):
        programs = sorted((REPO_ROOT / "examples" / "programs").glob("*.c"))
        assert programs, "examples/programs/ must ship lint-clean programs"
        for path in programs:
            found = lint_source(path.read_text(encoding="utf-8"))
            assert found == [], (path.name, [d.render() for d in found])

    def test_fuzz_regression_corpus(self):
        for path in sorted((REPO_ROOT / "tests" / "regression" / "fuzz").glob("*.c")):
            found = lint_source(path.read_text(encoding="utf-8"))
            if path.name == "call_arity_mismatch.c":
                # The deliberately invalid reproducer: the parser must keep
                # rejecting it, and lint must say so as R000, not crash.
                assert codes(found) == {"R000"}
            else:
                assert found == [], (path.name, [d.render() for d in found])


class TestMutations:
    """A clean program plus one seeded defect yields the matching code."""

    @settings(max_examples=25, deadline=None)
    @given(name=st.sampled_from(["v", "acc", "tmp", "w1"]))
    def test_deleting_a_declaration_yields_r001(self, name):
        clean = (
            "int main(int n) {\n"
            f"    int {name} = n + 1;\n"
            f"    return {name};\n"
            "}\n"
        )
        assert lint_source(clean) == []
        mutated = clean.replace(f"    int {name} = n + 1;\n", "")
        assert "R001" in codes(lint_source(mutated))

    @settings(max_examples=25, deadline=None)
    @given(divisor=st.integers(min_value=2, max_value=9))
    def test_zeroing_a_divisor_yields_r201(self, divisor):
        clean = f"int main(int n) {{\n    return n / {divisor};\n}}\n"
        assert lint_source(clean) == []
        mutated = clean.replace(f"/ {divisor}", "/ 0")
        assert "R201" in codes(lint_source(mutated))

    @settings(max_examples=25, deadline=None)
    @given(base=st.integers(min_value=0, max_value=3))
    def test_dropping_the_base_case_yields_r102(self, base):
        clean = (
            "int f(int n) {\n"
            f"    if (n <= {base}) {{\n"
            "        return 0;\n"
            "    }\n"
            "    return f(n - 1) + 1;\n"
            "}\n\n"
            "int main(int n) {\n    return f(n);\n}\n"
        )
        assert lint_source(clean) == []
        mutated = (
            "int f(int n) {\n"
            "    return f(n - 1) + 1;\n"
            "}\n\n"
            "int main(int n) {\n    return f(n);\n}\n"
        )
        assert "R102" in codes(lint_source(mutated))


class TestEngineGate:
    BAD = "int main(int n) {\n    return n / 0;\n}\n"

    def test_gate_off_by_default(self, monkeypatch):
        monkeypatch.delenv(LINT_GATE_ENV, raising=False)
        # R201 is also a semantics rejection, so the ungated run still
        # fails — but as the front end's error, not lint's.
        task = AnalysisTask(name="bad", source=self.BAD, kind="analyze")
        with pytest.raises(InvalidProgram) as error:
            execute_task(task)
        assert "unsupported construct" in str(error.value)

    def test_gate_rejects_error_diagnostics(self, monkeypatch):
        monkeypatch.setenv(LINT_GATE_ENV, "1")
        task = AnalysisTask(name="bad", source=self.BAD, kind="analyze")
        with pytest.raises(InvalidProgram) as error:
            execute_task(task)
        assert str(error.value).startswith("lint: ")
        assert "R201" in str(error.value)

    def test_parse_errors_are_invalid_program_without_gate(self, monkeypatch):
        monkeypatch.delenv(LINT_GATE_ENV, raising=False)
        task = AnalysisTask(name="broken", source="int main( {", kind="analyze")
        with pytest.raises(InvalidProgram) as error:
            execute_task(task)
        assert "parse error" in str(error.value)

    def test_fuzz_kind_is_exempt(self, monkeypatch):
        importlib.import_module("repro.fuzz.oracle")  # registers the "fuzz" kind
        monkeypatch.setenv(LINT_GATE_ENV, "1")
        source = "int main(int n) {\n    return x;\n}\n"  # R001 error
        task = AnalysisTask(
            name="gen",
            source=source,
            kind="fuzz",
            params=(("runs", 1), ("baselines", False)),
        )
        payload = execute_task(task)  # must not raise InvalidProgram
        kinds = {f["kind"] for f in payload["findings"]}
        assert "generator-invariant" in kinds

    def test_gate_is_bit_identical_on_clean_programs(self, monkeypatch):
        # Each batch worker process starts with a zeroed fresh-symbol
        # counter; emulate that here so the in-process runs compare
        # likes with likes (the CLI-level property is per-process).
        task = AnalysisTask(name="clean", source=CLEAN, kind="analyze")
        monkeypatch.delenv(LINT_GATE_ENV, raising=False)
        reset_fresh_counter()
        ungated = execute_task(task)
        monkeypatch.setenv(LINT_GATE_ENV, "1")
        reset_fresh_counter()
        gated = execute_task(task)
        assert gated == ungated
