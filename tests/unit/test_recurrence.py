"""Unit tests for the recurrence subsystem: ExpPoly, C-finite solving, stratified systems."""


import pytest
import sympy

from repro.formulas import Polynomial, sym
from repro.recurrence import (
    ExpPoly,
    RecurrenceEquation,
    RecurrenceSolvingError,
    StratifiedSystem,
    geometric_convolution,
    solve_first_order,
    solve_linear_system,
)

H = ExpPoly.zero().var  # the default sequence variable
N = sympy.Symbol("n", positive=True)


class TestExpPoly:
    def test_constant_and_zero(self):
        assert ExpPoly.zero().is_zero
        assert ExpPoly.constant(5).evaluate(3) == 5
        assert ExpPoly.constant(5).is_constant

    def test_variable(self):
        assert ExpPoly.variable().evaluate(7) == 7

    def test_exponential_evaluation(self):
        e = ExpPoly.exponential(2, 3)  # 3 * 2^h
        assert e.evaluate(0) == 3
        assert e.evaluate(4) == 48

    def test_addition_merges_bases(self):
        e = ExpPoly.exponential(2) + ExpPoly.exponential(2) + ExpPoly.constant(1)
        assert e.evaluate(3) == 17

    def test_subtraction_cancels(self):
        e = ExpPoly.exponential(2) - ExpPoly.exponential(2)
        assert e.is_zero

    def test_multiplication_multiplies_bases(self):
        e = ExpPoly.exponential(2) * ExpPoly.exponential(3)
        assert e.evaluate(2) == 36
        assert sympy.Integer(6) in e.terms

    def test_square_of_shifted_exponential(self):
        # (2^h - 1)^2 = 4^h - 2*2^h + 1
        e = (ExpPoly.exponential(2) - ExpPoly.constant(1)) ** 2
        assert e.evaluate(3) == 49
        assert set(e.terms) == {sympy.Integer(4), sympy.Integer(2), sympy.Integer(1)}

    def test_shift(self):
        e = ExpPoly.exponential(2) + ExpPoly.variable()  # 2^h + h
        shifted = e.shift(1)  # 2^(h+1) + h + 1
        assert shifted.evaluate(2) == 8 + 3

    def test_negative_base(self):
        e = ExpPoly.exponential(-2)
        assert e.evaluate(3) == -8

    def test_dominant_term(self):
        e = ExpPoly.exponential(2) + ExpPoly.polynomial(H**3)
        base, degree = e.dominant_term()
        assert base == 2

    def test_dominant_term_polynomial(self):
        e = ExpPoly.polynomial(H**2 + H)
        base, degree = e.dominant_term()
        assert base == 1
        assert degree == 2

    def test_substitute_plain(self):
        e = ExpPoly.exponential(2) + ExpPoly.variable()
        expr = e.substitute(N)
        assert sympy.simplify(expr - (2**N + N)) == 0

    def test_substitute_log_rewrites_power(self):
        # 2^(log2(n) + 1) should become 2*n.
        e = ExpPoly.exponential(2)
        expr = e.substitute(sympy.log(N, 2) + 1)
        assert sympy.simplify(expr - 2 * N) == 0

    def test_substitute_log_nontrivial_base(self):
        # 7^(log2(n)) should become n^(log2 7).
        e = ExpPoly.exponential(7)
        expr = e.substitute(sympy.log(N, 2))
        expected = N ** (sympy.log(7) / sympy.log(2))
        assert sympy.simplify(sympy.log(expr) - sympy.log(expected)) == 0

    def test_equality_semantic(self):
        a = ExpPoly.exponential(2, 2)
        b = ExpPoly.exponential(2) + ExpPoly.exponential(2)
        assert a == b

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            ExpPoly(None, {0: 1})


class TestGeometricConvolution:
    def check_convolution(self, a, g, upto=6):
        """Cross-check the closed form against the literal sum."""
        closed = geometric_convolution(a, g)
        for n in range(0, upto):
            literal = sum(
                sympy.Integer(a) ** (n - 1 - m) * g.evaluate(m) for m in range(n)
            )
            assert sympy.simplify(closed.evaluate(n) - literal) == 0, (a, g, n)

    def test_constant_inhomogeneity_a2(self):
        self.check_convolution(2, ExpPoly.constant(3))

    def test_constant_inhomogeneity_a1(self):
        self.check_convolution(1, ExpPoly.constant(5))

    def test_polynomial_inhomogeneity(self):
        self.check_convolution(1, ExpPoly.polynomial(H**2 + 1))

    def test_exponential_inhomogeneity_distinct_base(self):
        self.check_convolution(3, ExpPoly.exponential(2))

    def test_exponential_inhomogeneity_resonant(self):
        # Same base as the homogeneous coefficient: mergesort's h*2^h shape.
        self.check_convolution(2, ExpPoly.exponential(2))

    def test_mixed_inhomogeneity(self):
        g = ExpPoly.exponential(4, 3) + ExpPoly.polynomial(2 * H + 1)
        self.check_convolution(7, g)


class TestSolveFirstOrder:
    def check_recurrence(self, a, g, v0, k0, upto=8):
        closed = solve_first_order(a, g, v0, k0)
        value = sympy.Integer(v0)
        for k in range(k0, k0 + upto):
            if k >= closed.valid_from:
                assert sympy.simplify(closed.evaluate(k) - value) == 0, (a, k)
            value = sympy.Integer(a) * value + g.evaluate(k)

    def test_hanoi_recurrence(self):
        # b(h+1) = 2 b(h) + 1, b(1) = 0  =>  b(h) = 2^(h-1) - 1
        closed = solve_first_order(2, ExpPoly.constant(1), 0, 1)
        assert sympy.simplify(closed.expression.to_sympy() - (2 ** (H - 1) - 1)) == 0

    def test_subset_sum_recurrence(self):
        # b(h+1) = 2 b(h) + 2, b(1) = 0  =>  b(h) = 2^h - 2
        closed = solve_first_order(2, ExpPoly.constant(2), 0, 1)
        assert sympy.simplify(closed.expression.to_sympy() - (2**H - 2)) == 0

    def test_counter_recurrence(self):
        # b(h+1) = b(h) + 1, b(1) = 0  =>  b(h) = h - 1
        closed = solve_first_order(1, ExpPoly.constant(1), 0, 1)
        assert sympy.simplify(closed.expression.to_sympy() - (H - 1)) == 0

    def test_mergesort_shape(self):
        # b(h+1) = 2 b(h) + 2^h: resonance produces an h * 2^h term.
        closed = solve_first_order(2, ExpPoly.exponential(2), 0, 1)
        dominant = closed.expression.dominant_term()
        assert dominant[0] == 2
        assert dominant[1] >= 1
        self.check_recurrence(2, ExpPoly.exponential(2), 0, 1)

    def test_strassen_shape(self):
        # b(h+1) = 7 b(h) + 4^h grows like 7^h.
        closed = solve_first_order(7, ExpPoly.exponential(4), 0, 1)
        assert closed.expression.dominant_term()[0] == 7
        self.check_recurrence(7, ExpPoly.exponential(4), 0, 1)

    def test_zero_coefficient(self):
        # b(k+1) = g(k): closed form is a shifted copy, valid after the start.
        closed = solve_first_order(0, ExpPoly.variable(), 5, 1)
        assert closed.valid_from == 2
        assert closed.evaluate(3) == 2

    def test_generic_cross_check(self):
        self.check_recurrence(3, ExpPoly.polynomial(H + 2), 1, 0)
        self.check_recurrence(1, ExpPoly.exponential(2, 5), 2, 1)


class TestSolveLinearSystem:
    def test_mutual_recursion_example(self):
        # Ex. 4.1:  b1(h+1) = 18 b2(h) + 17,  b2(h+1) = 2 b1(h) + 1, zero at h=1.
        forms = solve_linear_system(
            [[0, 18], [2, 0]],
            [ExpPoly.constant(17), ExpPoly.constant(1)],
            [0, 0],
            initial_index=1,
        )
        b1, b2 = forms
        # Iterate to cross-check.
        v1, v2 = 0, 0
        for h in range(1, 8):
            assert sympy.simplify(b1.evaluate(h) - v1) == 0
            assert sympy.simplify(b2.evaluate(h) - v2) == 0
            v1, v2 = 18 * v2 + 17, 2 * v1 + 1
        # Dominant growth is 6^h for both components.
        assert abs(b1.expression.dominant_term()[0]) == 6
        assert abs(b2.expression.dominant_term()[0]) == 6

    def test_coupled_symmetric_system(self):
        # x(k+1) = x(k) + 2 y(k) + 1, y(k+1) = 2 x(k) + y(k): eigenvalues 3, -1.
        forms = solve_linear_system(
            [[1, 2], [2, 1]],
            [ExpPoly.constant(1), ExpPoly.zero()],
            [0, 0],
            initial_index=0,
        )
        x, y = forms
        vx, vy = 0, 0
        for k in range(0, 8):
            assert sympy.simplify(x.evaluate(k) - vx) == 0
            assert sympy.simplify(y.evaluate(k) - vy) == 0
            vx, vy = vx + 2 * vy + 1, 2 * vx + vy

    def test_non_diagonalizable_raises(self):
        with pytest.raises(RecurrenceSolvingError):
            solve_linear_system(
                [[1, 1], [0, 1]],
                [ExpPoly.constant(1), ExpPoly.constant(1)],
                [0, 0],
            )


def _bsym(name):
    return sym(name)


class TestStratifiedSystem:
    def make_system(self, equations):
        return StratifiedSystem(equations=equations, initial_value=0, initial_index=1)

    def test_single_equation(self):
        b = _bsym("b1")
        system = self.make_system(
            [RecurrenceEquation(b, 2 * Polynomial.var(b) + 2)]
        )
        solution = system.solve()
        assert sympy.simplify(solution[b].expression.to_sympy() - (2**H - 2)) == 0

    def test_triangular_with_nonlinear_lower_stratum(self):
        # b_n(h+1) = 2 b_n(h) + 1      (size doubles going up the tree)
        # b_c(h+1) = 2 b_c(h) + b_n(h)^2   (quadratic work per level: Strassen-like)
        bn, bc = _bsym("b_n"), _bsym("b_c")
        system = self.make_system(
            [
                RecurrenceEquation(bn, 2 * Polynomial.var(bn) + 1),
                RecurrenceEquation(
                    bc, 2 * Polynomial.var(bc) + Polynomial.var(bn) * Polynomial.var(bn)
                ),
            ]
        )
        solution = system.solve()
        history = system.iterate(6)
        for offset in range(0, 6):
            h = 1 + offset
            assert sympy.simplify(
                solution[bn].evaluate(h) - history[bn][offset]
            ) == 0
            assert sympy.simplify(
                solution[bc].evaluate(h) - history[bc][offset]
            ) == 0
        # The cost closed form is dominated by 4^h.
        assert solution[bc].expression.dominant_term()[0] == 4

    def test_mutual_recursion_in_stratified_form(self):
        b1, b2 = _bsym("b1"), _bsym("b2")
        system = self.make_system(
            [
                RecurrenceEquation(b1, 18 * Polynomial.var(b2) + 17),
                RecurrenceEquation(b2, 2 * Polynomial.var(b1) + 1),
            ]
        )
        solution = system.solve()
        history = system.iterate(6)
        for offset in range(0, 6):
            h = 1 + offset
            assert sympy.simplify(solution[b1].evaluate(h) - history[b1][offset]) == 0

    def test_validate_rejects_duplicate_definition(self):
        b = _bsym("b1")
        system = self.make_system(
            [
                RecurrenceEquation(b, Polynomial.var(b)),
                RecurrenceEquation(b, Polynomial.constant(1)),
            ]
        )
        with pytest.raises(RecurrenceSolvingError):
            system.solve()

    def test_validate_rejects_undefined_use(self):
        b1, b2 = _bsym("b1"), _bsym("b2")
        system = self.make_system([RecurrenceEquation(b1, Polynomial.var(b2))])
        with pytest.raises(RecurrenceSolvingError):
            system.solve()

    def test_validate_rejects_nonlinear_cycle(self):
        b1, b2 = _bsym("b1"), _bsym("b2")
        system = self.make_system(
            [
                RecurrenceEquation(b1, Polynomial.var(b2) * Polynomial.var(b2)),
                RecurrenceEquation(b2, Polynomial.var(b1)),
            ]
        )
        with pytest.raises(RecurrenceSolvingError):
            system.solve()

    def test_iterate_matches_hand_computation(self):
        b = _bsym("b")
        system = self.make_system([RecurrenceEquation(b, 2 * Polynomial.var(b) + 1)])
        history = system.iterate(4)
        assert history[b] == [0, 1, 3, 7, 15]
