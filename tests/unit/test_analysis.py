"""Unit tests for intraprocedural analysis: loop summarization and path summaries."""


from repro.abstraction import formula_entails, is_formula_satisfiable
from repro.analysis import ProcedureContext, path_summary, summarize_loop, summarize_procedure
from repro.formulas import (
    Polynomial,
    TransitionFormula,
    atom_eq,
    atom_ge,
    atom_le,
    conjoin,
    post,
    pre,
)
from repro.lang import ast, build_cfg, parse_program
from repro.lang.semantics import assign_transition, assume_transition


def entails_over(summary: TransitionFormula, variables, conclusion):
    """Entailment over a summary with explicit frame conjuncts."""
    return formula_entails(summary.to_formula(variables), conclusion)


class TestLoopSummary:
    def test_counter_loop(self):
        # body: assume(i < n); i = i + 1; cost = cost + 1
        body = (
            assume_transition(ast.Compare("<", ast.VarRef("i"), ast.VarRef("n")))
            .compose(assign_transition("i", ast.BinOp("+", ast.VarRef("i"), ast.IntLit(1))))
            .compose(assign_transition("cost", ast.BinOp("+", ast.VarRef("cost"), ast.IntLit(1))))
        )
        star = summarize_loop(body)
        variables = ["i", "n", "cost"]
        ip, np_, cp = Polynomial.var(post("i")), Polynomial.var(post("n")), Polynomial.var(post("cost"))
        i0, n0, c0 = Polynomial.var(pre("i")), Polynomial.var(pre("n")), Polynomial.var(pre("cost"))
        # n is invariant.
        assert entails_over(star, variables, atom_eq(np_, n0))
        # i only grows, and cost grows with i.
        assert entails_over(star, variables, atom_ge(ip, i0))
        assert entails_over(star, variables, atom_eq(cp - c0, ip - i0))
        # Last-iteration guard: when i starts below n, i never exceeds n.
        hypothesis = conjoin([star.to_formula(variables), atom_le(i0, n0)])
        assert formula_entails(hypothesis, atom_le(ip, n0))

    def test_loop_bound_from_guard(self):
        # When the loop can run at all (i <= n), its cost increase is at most n - i0.
        body = (
            assume_transition(ast.Compare("<", ast.VarRef("i"), ast.VarRef("n")))
            .compose(assign_transition("i", ast.BinOp("+", ast.VarRef("i"), ast.IntLit(1))))
            .compose(assign_transition("cost", ast.BinOp("+", ast.VarRef("cost"), ast.IntLit(1))))
        )
        star = summarize_loop(body)
        variables = ["i", "n", "cost"]
        cp, c0 = Polynomial.var(post("cost")), Polynomial.var(pre("cost"))
        n0, i0 = Polynomial.var(pre("n")), Polynomial.var(pre("i"))
        hypothesis = conjoin([star.to_formula(variables), atom_le(i0, n0)])
        assert formula_entails(hypothesis, atom_le(cp - c0, n0 - i0))

    def test_identity_branch_included(self):
        body = assume_transition(ast.Compare("<", ast.VarRef("i"), ast.VarRef("n"))).compose(
            assign_transition("i", ast.BinOp("+", ast.VarRef("i"), ast.IntLit(1)))
        )
        star = summarize_loop(body)
        # Zero iterations must be allowed: i' = i is satisfiable.
        formula = star.to_formula(["i", "n"])
        assert is_formula_satisfiable(
            conjoin([formula, atom_eq(Polynomial.var(post("i")), Polynomial.var(pre("i")))])
        )

    def test_bottom_body_is_identity(self):
        star = summarize_loop(TransitionFormula.bottom())
        assert star.is_identity

    def test_nonlinear_accumulation(self):
        # body: assume(i < n); i++; cost = cost + i0-style triangle sum gives ~K^2/2.
        body = (
            assume_transition(ast.Compare("<", ast.VarRef("i"), ast.VarRef("n")))
            .compose(assign_transition("cost", ast.BinOp("+", ast.VarRef("cost"), ast.VarRef("i"))))
            .compose(assign_transition("i", ast.BinOp("+", ast.VarRef("i"), ast.IntLit(1))))
        )
        star = summarize_loop(body)
        variables = ["i", "n", "cost"]
        # Sanity: still sound w.r.t. a concrete run i0=0, n=3: cost increases by 0+1+2=3.
        formula = star.to_formula(variables)
        concrete = conjoin(
            [
                formula,
                atom_eq(Polynomial.var(pre("i")), 0),
                atom_eq(Polynomial.var(pre("n")), 3),
                atom_eq(Polynomial.var(pre("cost")), 0),
                atom_eq(Polynomial.var(post("i")), 3),
                atom_eq(Polynomial.var(post("cost")), 3),
            ]
        )
        assert is_formula_satisfiable(concrete)


class TestPathSummary:
    def no_calls(self, edge):  # pragma: no cover - never invoked
        raise AssertionError("unexpected call edge")

    def test_straight_line_procedure(self):
        program = parse_program("int f(int n) { int x = n + 1; return x * 2; }")
        cfg = build_cfg(program.procedure("f"))
        summary = path_summary(cfg, self.no_calls)
        variables = cfg.variables(())
        ret = Polynomial.var(post("return"))
        n0 = Polynomial.var(pre("n"))
        assert entails_over(summary, variables, atom_eq(ret, 2 * n0 + 2))

    def test_branching_procedure(self):
        program = parse_program(
            "int f(int n) { int r = 0; if (n > 0) { r = 1; } else { r = 2; } return r; }"
        )
        cfg = build_cfg(program.procedure("f"))
        summary = path_summary(cfg, self.no_calls)
        variables = cfg.variables(())
        ret = Polynomial.var(post("return"))
        assert entails_over(summary, variables, atom_ge(ret, 1))
        assert entails_over(summary, variables, atom_le(ret, 2))

    def test_loop_procedure(self):
        program = parse_program(
            """
            int cost;
            int count(int n) { int i = 0; while (i < n) { i = i + 1; cost = cost + 1; } return i; }
            """
        )
        cfg = build_cfg(program.procedure("count"))
        summary = path_summary(cfg, self.no_calls)
        variables = cfg.variables(("cost",))
        cost_delta = Polynomial.var(post("cost")) - Polynomial.var(pre("cost"))
        n0 = Polynomial.var(pre("n"))
        # For non-negative n, the loop body runs at most n times.
        hypothesis = conjoin([summary.to_formula(variables), atom_ge(n0, 0)])
        assert formula_entails(hypothesis, atom_le(cost_delta, n0))
        assert entails_over(summary, variables, atom_ge(cost_delta, 0))

    def test_call_edge_uses_interpretation(self):
        program = parse_program("int f(int n) { int x = g(n); return x + 1; }")
        cfg = build_cfg(program.procedure("f"))

        def interpret(edge):
            # g behaves as return := n (callee vocabulary: its parameter is n).
            return TransitionFormula.relation(
                atom_eq(Polynomial.var(post("return")), Polynomial.var(pre("n"))),
                ["return"],
            )

        from repro.analysis import inline_call

        callee = ast.Procedure("g", (ast.Parameter("n"),), ast.Block(()), True)

        def call_interpretation(edge):
            return inline_call(edge, callee, interpret(edge))

        summary = path_summary(cfg, call_interpretation)
        variables = cfg.variables(())
        assert entails_over(
            summary,
            variables,
            atom_eq(Polynomial.var(post("return")), Polynomial.var(pre("n")) + 1),
        )


NONREC_PROGRAM = """
int g;
int helper(int a) { g = g + a; return a + 1; }
int top(int n) { int r = helper(n); return r + helper(0); }
"""


class TestSummarizeProcedure:
    def test_base_case_summary_with_false_recursion(self):
        program = parse_program(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }"
        )
        procedure = program.procedure("fib")
        context = ProcedureContext.of(procedure, ())
        summary = summarize_procedure(
            context,
            recursive_interpretation={"fib": TransitionFormula.bottom()},
            external_summaries={},
            procedures={"fib": procedure},
        )
        variables = context.summary_variables
        ret = Polynomial.var(post("return"))
        n0 = Polynomial.var(pre("n"))
        # Base case: return' = n and n <= 1.
        assert entails_over(summary, variables, atom_eq(ret, n0))
        assert entails_over(summary, variables, atom_le(n0, 1))

    def test_nonrecursive_chain(self):
        program = parse_program(NONREC_PROGRAM)
        helper = program.procedure("helper")
        top = program.procedure("top")
        helper_context = ProcedureContext.of(helper, program.global_names)
        helper_summary = summarize_procedure(
            helper_context, {}, {}, {p.name: p for p in program.procedures}
        )
        g_delta = Polynomial.var(post("g")) - Polynomial.var(pre("g"))
        assert entails_over(
            helper_summary,
            helper_context.summary_variables,
            atom_eq(Polynomial.var(post("return")), Polynomial.var(pre("a")) + 1),
        )
        assert entails_over(
            helper_summary,
            helper_context.summary_variables,
            atom_eq(g_delta, Polynomial.var(pre("a"))),
        )
        top_context = ProcedureContext.of(top, program.global_names)
        top_summary = summarize_procedure(
            top_context,
            {},
            {"helper": helper_summary},
            {p.name: p for p in program.procedures},
        )
        # top(n): r = n+1, second call returns 1, so return' = n + 2, g' = g + n.
        assert entails_over(
            top_summary,
            top_context.summary_variables,
            atom_eq(Polynomial.var(post("return")), Polynomial.var(pre("n")) + 2),
        )
        assert entails_over(
            top_summary,
            top_context.summary_variables,
            atom_eq(g_delta, Polynomial.var(pre("n"))),
        )

    def test_locals_are_hidden(self):
        program = parse_program("int f(int n) { int local = n * 3; return local; }")
        procedure = program.procedure("f")
        context = ProcedureContext.of(procedure, ())
        summary = summarize_procedure(context, {}, {}, {"f": procedure})
        assert "local" not in summary.footprint
