"""Property-based guards for the optimised polyhedral hot path (hypothesis).

The hot-path optimisations (content-keyed memoization, equality presolve,
syntactic pruning) must never change what the polyhedral layer *computes*.
These properties pin the semantics down over randomly generated rational
constraint systems, checking membership on an integer grid (exact arithmetic,
no solver in the oracle):

* projection soundness — every point of the input system satisfies its
  Fourier–Motzkin projection;
* hull containment — the polyhedral join contains each of its arguments;
* minimization — ``minimize_constraints`` preserves the solution set exactly;
* memo determinism — cached and uncached projections are identical.
"""

import itertools
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.formulas import sym
from repro.polyhedra import (
    ConstraintKind,
    LinearConstraint,
    Polyhedron,
    clear_caches,
    convex_hull_pair,
    eliminate,
    minimize_constraints,
)

SYMBOLS = [sym(name) for name in ("x", "y", "z")]

#: Exact oracle: every integer point of a small grid.
GRID = [
    dict(zip(SYMBOLS, point))
    for point in itertools.product(range(-3, 4), repeat=len(SYMBOLS))
]


@st.composite
def constraints(draw):
    coeffs = {
        symbol: Fraction(draw(st.integers(-3, 3)))
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=1, max_size=3, unique=True)
        )
    }
    kind = draw(st.sampled_from([ConstraintKind.LE, ConstraintKind.LE, ConstraintKind.EQ]))
    return LinearConstraint.make(coeffs, Fraction(draw(st.integers(-4, 4))), kind)


@st.composite
def systems(draw, min_size=1, max_size=5):
    return draw(st.lists(constraints(), min_size=min_size, max_size=max_size))


def satisfies(system, point) -> bool:
    return all(constraint.evaluate(point) for constraint in system)


class TestProjectionSoundness:
    @settings(max_examples=60, deadline=None)
    @given(systems(), st.sampled_from(SYMBOLS))
    def test_grid_points_survive_projection(self, system, eliminated):
        projected = eliminate(system, [eliminated])
        for point in GRID:
            if satisfies(system, point):
                assert satisfies(projected, point), (
                    f"{point} satisfies the input but not its projection"
                )

    @settings(max_examples=40, deadline=None)
    @given(systems())
    def test_projection_mentions_no_eliminated_symbol(self, system):
        eliminated = SYMBOLS[0]
        projected = eliminate(system, [eliminated])
        for constraint in projected:
            assert eliminated not in constraint.symbols


class TestHullContainsArguments:
    @settings(max_examples=40, deadline=None)
    @given(systems(), systems())
    def test_join_contains_both_arguments(self, first, second):
        p = Polyhedron(first)
        q = Polyhedron(second)
        hull = convex_hull_pair(p, q)
        for point in GRID:
            inside_p = satisfies(first, point)
            inside_q = satisfies(second, point)
            if inside_p or inside_q:
                assert satisfies(hull.constraints, point), (
                    f"{point} is in an argument but not in the hull"
                )


class TestMinimizePreservesSolutions:
    @settings(max_examples=60, deadline=None)
    @given(systems(max_size=6))
    def test_solution_set_unchanged(self, system):
        minimized = minimize_constraints(system)
        for point in GRID:
            assert satisfies(system, point) == satisfies(minimized, point), (
                f"minimize changed membership of {point}"
            )


class TestProjectionMemoDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(systems(), st.sampled_from(SYMBOLS))
    def test_cached_equals_uncached(self, system, eliminated):
        clear_caches()
        cold = eliminate(system, [eliminated])
        warm = eliminate(system, [eliminated])  # served from the memo table
        assert cold == warm
        clear_caches()
        recomputed = eliminate(system, [eliminated])
        assert cold == recomputed

    @settings(max_examples=30, deadline=None)
    @given(systems())
    def test_fresh_symbol_renaming_shares_results(self, system):
        """Projection is equivariant under renaming: the canonical-key memo
        must return the correctly renamed result for a renamed copy."""
        mapping = {s: sym(f"renamed_{s.name}") for s in SYMBOLS}
        inverse = {v: k for k, v in mapping.items()}
        renamed = [c.rename(mapping) for c in system]
        clear_caches()
        direct = eliminate(system, [SYMBOLS[0]])
        via_renaming = [
            c.rename(inverse)
            for c in eliminate(renamed, [mapping[SYMBOLS[0]]])
        ]
        for point in GRID:
            assert satisfies(direct, point) == satisfies(via_renaming, point)
