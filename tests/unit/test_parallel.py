"""Unit tests for the DAG-parallel SCC scheduler (:mod:`repro.core.parallel`).

The determinism *contract* (parallel verdicts == serial verdicts on whole
benchmark suites) is pinned by ``tests/integration/test_determinism.py``;
this module tests the machinery itself: the condensation DAG, the schedule
report, configuration resolution, the serial fallback on child failure, and
the incremental analyzer's splice-through-the-scheduler path.
"""

import pytest

from repro.core import (
    ChoraOptions,
    analyze_program,
    analyze_program_parallel,
    check_assertions,
    configured_parallel_sccs,
    cost_bound,
    last_schedule_report,
    set_parallel_sccs,
)
from repro.core import parallel as par
from repro.core.incremental import IncrementalAnalyzer
from repro.lang import parse_program
from repro.lang.callgraph import build_call_graph

#: Three independent recursive leaves under one root: the condensation is a
#: wide DAG (f1 | f2 | f3) -> main, so three components can run concurrently.
WIDE = """
int cost = 0;

int f1(int n) {
    cost = cost + 1;
    if (n <= 0) { return 0; }
    int r = f1(n - 1);
    return r + 1;
}

int f2(int n) {
    cost = cost + 2;
    if (n <= 0) { return 0; }
    int r = f2(n - 1);
    return r;
}

int f3(int n) {
    cost = cost + 1;
    if (n <= 0) { return 0; }
    int r = f3(n - 2);
    return r;
}

int main(int n) {
    cost = cost + 1;
    if (n <= 0) { return 0; }
    f1(n);
    f2(n);
    f3(n);
    assert(cost >= 1);
    return cost;
}
"""

#: A pure chain: the condensation has no parallelism at all, so the
#: scheduler must degenerate to fork-free inline execution.
CHAIN = """
int cost = 0;

int leaf(int n) {
    cost = cost + 1;
    if (n <= 0) { return 0; }
    int r = leaf(n - 1);
    return r;
}

int mid(int n) {
    cost = cost + 1;
    leaf(n);
    return 0;
}

int main(int n) {
    cost = cost + 1;
    mid(n);
    assert(cost >= 1);
    return cost;
}
"""


@pytest.fixture
def clean_config(monkeypatch):
    """Isolate the process-wide worker configuration."""
    monkeypatch.delenv(par.PARALLEL_SCCS_ENV, raising=False)
    previous = set_parallel_sccs(None)
    yield
    set_parallel_sccs(previous)


def _verdicts(result, options=ChoraOptions()):
    """The observable output: assertion verdicts + the main cost bound."""
    outcomes = tuple(
        (o.site.procedure, o.site.text, o.proved)
        for o in check_assertions(result, options.abstraction)
    )
    bound = cost_bound(result, "main", "cost")
    return outcomes, (bound.asymptotic, bound.found)


needs_fork = pytest.mark.skipif(
    not par.fork_available(), reason="os.fork not available"
)


class TestComponentDag:
    def test_wide_condensation_edges(self):
        program = parse_program(WIDE)
        graph = build_call_graph(program)
        components = graph.strongly_connected_components()
        dependencies, dependents = par._component_dag(components, graph)
        index_of = {name: i for i, c in enumerate(components) for name in c}
        root = index_of["main"]
        leaves = {index_of["f1"], index_of["f2"], index_of["f3"]}
        assert dependencies[root] == leaves
        for leaf in leaves:
            assert dependencies[leaf] == set()
            assert dependents[leaf] == {root}
        # Dependency-first component order: every leaf precedes the root.
        assert all(leaf < root for leaf in leaves)


@needs_fork
class TestParallelMatchesSerial:
    def test_wide_program_verdicts_and_bound(self, clean_config):
        program = parse_program(WIDE)
        serial = _verdicts(analyze_program(program))
        parallel = _verdicts(analyze_program_parallel(program, workers=3))
        assert parallel == serial

    def test_summary_names_and_recursion_flags(self, clean_config):
        program = parse_program(WIDE)
        serial = analyze_program(program)
        parallel = analyze_program_parallel(program, workers=3)
        # Key *order* matters: payloads render dicts in iteration order.
        assert list(parallel.summaries) == list(serial.summaries)
        assert {n: s.is_recursive for n, s in parallel.summaries.items()} == {
            n: s.is_recursive for n, s in serial.summaries.items()
        }
        assert list(parallel.height_analyses) == list(serial.height_analyses)

    def test_schedule_report_shape(self, clean_config):
        program = parse_program(WIDE)
        analyze_program_parallel(program, workers=3)
        report = last_schedule_report()
        assert report is not None
        assert report.workers == 3
        assert not report.fallback
        by_names = {t.names: t.mode for t in report.timings}
        # The three leaves are ready together -> forked; the root becomes
        # ready alone with nothing in flight -> inline.
        assert by_names[("f1",)] == "forked"
        assert by_names[("f2",)] == "forked"
        assert by_names[("f3",)] == "forked"
        assert by_names[("main",)] == "inline"

    def test_chain_runs_fork_free(self, clean_config):
        program = parse_program(CHAIN)
        serial = _verdicts(analyze_program(program))
        assert _verdicts(analyze_program_parallel(program, workers=4)) == serial
        report = last_schedule_report()
        assert report.forked_components == 0
        assert [t.mode for t in report.timings] == ["inline"] * 3

    def test_take_schedule_report_pops(self, clean_config):
        analyze_program_parallel(parse_program(CHAIN), workers=2)
        assert par.take_schedule_report() is not None
        assert par.take_schedule_report() is None
        assert last_schedule_report() is None

    def test_workers_one_is_plain_serial(self, clean_config):
        program = parse_program(WIDE)
        serial = _verdicts(analyze_program(program))
        assert _verdicts(analyze_program_parallel(program, workers=1)) == serial
        report = last_schedule_report()
        assert [t.mode for t in report.timings] == ["serial"] * 4


@needs_fork
class TestFallback:
    def test_child_failure_falls_back_to_serial(self, clean_config, monkeypatch):
        """Any child failure discards parallel state and re-runs serially —
        the answer must still be the serial answer, flagged as a fallback."""

        def explode(*args, **kwargs):
            raise RuntimeError("injected scc worker failure")

        monkeypatch.setattr(par, "_child_analyze", explode)
        program = parse_program(WIDE)
        serial = _verdicts(analyze_program(program))
        assert _verdicts(analyze_program_parallel(program, workers=3)) == serial
        report = last_schedule_report()
        assert report.fallback
        assert [t.mode for t in report.timings] == ["serial"] * 4

    def test_child_death_without_payload_falls_back(self, clean_config, monkeypatch):
        import os

        def die(*args, **kwargs):
            os._exit(1)

        monkeypatch.setattr(par, "_child_analyze", die)
        program = parse_program(WIDE)
        serial = _verdicts(analyze_program(program))
        assert _verdicts(analyze_program_parallel(program, workers=2)) == serial
        assert last_schedule_report().fallback


class TestConfiguration:
    def test_resolve_worker_request(self):
        assert par.resolve_worker_request(None) >= 1
        assert par.resolve_worker_request("auto") >= 1
        assert par.resolve_worker_request(4) == 4
        assert par.resolve_worker_request("8") == 8
        with pytest.raises(ValueError):
            par.resolve_worker_request(-1)

    def test_override_beats_environment(self, clean_config, monkeypatch):
        monkeypatch.setenv(par.PARALLEL_SCCS_ENV, "7")
        assert configured_parallel_sccs() == 7
        set_parallel_sccs(2)
        assert configured_parallel_sccs() == 2
        set_parallel_sccs(None)
        assert configured_parallel_sccs() == 7

    def test_environment_auto_and_garbage(self, clean_config, monkeypatch):
        monkeypatch.setenv(par.PARALLEL_SCCS_ENV, "auto")
        assert configured_parallel_sccs() >= 1
        monkeypatch.setenv(par.PARALLEL_SCCS_ENV, "three")
        assert configured_parallel_sccs() == 0
        monkeypatch.delenv(par.PARALLEL_SCCS_ENV)
        assert configured_parallel_sccs() == 0


@needs_fork
class TestIncrementalParallel:
    def test_cold_then_spliced(self, clean_config):
        analyzer = IncrementalAnalyzer(parallel_sccs=3)
        program = parse_program(WIDE)
        serial = _verdicts(analyze_program(program))
        first = _verdicts(analyzer.analyze(program))
        assert first == serial
        assert sorted(analyzer.last_report.analyzed) == ["f1", "f2", "f3", "main"]
        assert analyzer.last_report.reused == ()
        # The repeat run must answer every component from the store — the
        # splice path runs *through* the scheduler without forking.
        second = _verdicts(analyzer.analyze(program))
        assert second == serial
        assert analyzer.last_report.analyzed == ()
        assert sorted(analyzer.last_report.reused) == ["f1", "f2", "f3", "main"]
        report = last_schedule_report()
        assert report is not None
        assert report.forked_components == 0
        assert {t.mode for t in report.timings} == {"spliced"}

    def test_store_records_shared_with_serial_analyzer(self, clean_config):
        """Parallel and serial runs key the store identically, so a store
        warmed in parallel answers a serial analyzer's request (and vice
        versa would hold too — the key is mode-independent)."""
        program = parse_program(WIDE)
        warm = IncrementalAnalyzer(parallel_sccs=3)
        warm.analyze(program)
        warm.parallel_sccs = 0  # flip the same instance to the serial path
        warm.analyze(program)
        assert warm.last_report.analyzed == ()
        assert sorted(warm.last_report.reused) == ["f1", "f2", "f3", "main"]
