"""Unit tests for the formula AST: construction, negation, substitution, DNF."""

import pytest

from repro.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    AtomKind,
    Exists,
    Or,
    Polynomial,
    atom_eq,
    atom_ge,
    atom_le,
    atom_lt,
    conjoin,
    disjoin,
    exists,
    formula_size,
    free_symbols,
    fresh,
    map_atoms,
    negate,
    post,
    rename,
    substitute,
    sym,
    to_dnf,
)

X = sym("x")
Y = sym("y")
XP = post("x")
PX = Polynomial.var(X)
PY = Polynomial.var(Y)


class TestSmartConstructors:
    def test_atom_le_normalizes(self):
        atom = atom_le(PX, PY)
        assert isinstance(atom, Atom)
        assert atom.kind is AtomKind.LE
        assert atom.polynomial == PX - PY

    def test_atom_ge_swaps(self):
        atom = atom_ge(PX, 3)
        assert isinstance(atom, Atom)
        assert atom.polynomial == Polynomial.constant(3) - PX

    def test_constant_atoms_fold(self):
        assert atom_le(1, 2) == TRUE
        assert atom_le(2, 1) == FALSE
        assert atom_eq(5, 5) == TRUE
        assert atom_lt(3, 3) == FALSE

    def test_conjoin_flattens_and_simplifies(self):
        a = atom_le(PX, 0)
        assert conjoin([TRUE, a]) == a
        assert conjoin([a, FALSE]) == FALSE
        nested = conjoin([conjoin([a, atom_le(PY, 0)]), atom_le(PX, 1)])
        assert isinstance(nested, And)
        assert len(nested.children) == 3

    def test_disjoin_flattens_and_simplifies(self):
        a = atom_le(PX, 0)
        assert disjoin([FALSE, a]) == a
        assert disjoin([a, TRUE]) == TRUE
        nested = disjoin([disjoin([a, atom_le(PY, 0)]), atom_le(PX, 1)])
        assert isinstance(nested, Or)
        assert len(nested.children) == 3

    def test_exists_drops_unused_symbols(self):
        a = atom_le(PX, 0)
        assert exists([Y], a) == a

    def test_exists_flattens(self):
        a = atom_le(PX + PY, 0)
        nested = exists([X], exists([Y], a))
        assert isinstance(nested, Exists)
        assert set(nested.symbols) == {X, Y}

    def test_and_or_operators(self):
        a = atom_le(PX, 0)
        b = atom_le(PY, 0)
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)


class TestNegation:
    def test_negate_le_integer_semantics(self):
        # not(x <= 0)  ==  x >= 1  ==  1 - x <= 0
        neg = negate(atom_le(PX, 0))
        assert isinstance(neg, Atom)
        assert neg.polynomial == Polynomial.constant(1) - PX

    def test_negate_le_rational_semantics(self):
        neg = negate(atom_le(PX, 0), integer_semantics=False)
        assert isinstance(neg, Atom)
        assert neg.kind is AtomKind.LT

    def test_negate_eq_is_disjunction(self):
        neg = negate(atom_eq(PX, 0))
        assert isinstance(neg, Or)
        assert len(neg.children) == 2

    def test_negate_true_false(self):
        assert negate(TRUE) == FALSE
        assert negate(FALSE) == TRUE

    def test_negate_de_morgan(self):
        formula = conjoin([atom_le(PX, 0), atom_le(PY, 0)])
        neg = negate(formula)
        assert isinstance(neg, Or)

    def test_negate_exists_raises(self):
        with pytest.raises(ValueError):
            negate(exists([X], atom_le(PX, 0)))


class TestTraversals:
    def test_free_symbols(self):
        formula = conjoin([atom_le(PX, PY), atom_le(Polynomial.var(XP), 0)])
        assert free_symbols(formula) == frozenset({X, Y, XP})

    def test_free_symbols_respects_binding(self):
        formula = exists([X], atom_le(PX, PY))
        assert free_symbols(formula) == frozenset({Y})

    def test_substitute(self):
        # x <= y with x := y + 1 yields the contradictory constant atom 1 <= 0,
        # which the smart constructor folds to FALSE.
        out = substitute(atom_le(PX, PY), {X: PY + 1})
        assert out == FALSE
        # x <= y + 2 with x := y + 1 folds to TRUE.
        out2 = substitute(atom_le(PX, PY + 2), {X: PY + 1})
        assert out2 == TRUE

    def test_substitute_does_not_touch_bound(self):
        formula = exists([X], atom_le(PX, PY))
        out = substitute(formula, {X: Polynomial.constant(5)})
        assert out == formula

    def test_rename(self):
        formula = atom_le(PX, 0)
        out = rename(formula, {X: Y})
        assert free_symbols(out) == frozenset({Y})

    def test_map_atoms(self):
        formula = conjoin([atom_le(PX, 0), atom_le(PY, 0)])
        out = map_atoms(formula, lambda a: atom_le(a.polynomial + 1, 0))
        assert isinstance(out, And)
        assert all(c.polynomial.constant_value == 1 for c in out.children)

    def test_formula_size(self):
        formula = conjoin([atom_le(PX, 0), disjoin([atom_le(PY, 0), TRUE])])
        assert formula_size(formula) >= 1


class TestDnf:
    def test_atom_single_cube(self):
        cubes = to_dnf(atom_le(PX, 0))
        assert len(cubes) == 1
        assert len(cubes[0].atoms) == 1

    def test_true_and_false(self):
        assert len(to_dnf(TRUE)) == 1
        assert to_dnf(TRUE)[0].is_empty
        assert to_dnf(FALSE) == []

    def test_distribution(self):
        a, b, c, d = (atom_le(PX, i) for i in range(4))
        formula = conjoin([disjoin([a, b]), disjoin([c, d])])
        cubes = to_dnf(formula)
        assert len(cubes) == 4
        assert all(len(cube.atoms) == 2 for cube in cubes)

    def test_exists_collects_bound_symbols(self):
        t = fresh("t")
        formula = exists([t], atom_le(Polynomial.var(t), PX))
        cubes = to_dnf(formula)
        assert len(cubes) == 1
        assert t in cubes[0].bound

    def test_conjoining_same_bound_name_alpha_renames(self):
        # Two copies of one summary carry the same bound name for distinct
        # variables (e.g. a procedure inlined at two call sites).  Conflating
        # them is unsound: here t = x /\ t = y would wrongly force x = y.
        t = fresh("t")
        left = exists([t], atom_eq(Polynomial.var(t), PX))
        right = exists([t], atom_eq(Polynomial.var(t), PY))
        cubes = to_dnf(conjoin([left, right]))
        assert len(cubes) == 1
        cube = cubes[0]
        assert len(cube.bound) == 2
        # The two equations mention two different bound symbols.
        mentioned = set()
        for atom in cube.atoms:
            mentioned |= {s for s in atom.polynomial.symbols if s in cube.bound}
        assert len(mentioned) == 2

    def test_exists_hoist_renames_shadowed_binder(self):
        # exists t. (P(t) /\ exists t. Q(t)): the inner t shadows the outer
        # one; hoisting both must keep the occurrences apart.
        t = fresh("t")
        inner = exists([t], atom_eq(Polynomial.var(t), PY))
        formula = exists([t], conjoin([atom_eq(Polynomial.var(t), PX), inner]))
        cubes = to_dnf(formula)
        assert len(cubes) == 1
        cube = cubes[0]
        assert len(cube.bound) == 2
        # x and y must not be transitively equated through a shared binder.
        by_symbol: dict = {}
        for atom in cube.atoms:
            for s in atom.polynomial.symbols:
                if s in cube.bound:
                    by_symbol.setdefault(s, set()).update(atom.polynomial.symbols)
        assert not any(X in used and Y in used for used in by_symbol.values())

    def test_free_occurrence_is_not_captured_by_sibling_binder(self):
        # t occurs free in the left conjunct and bound in the right one;
        # conjoining must not capture the free occurrence.
        t = fresh("t")
        left = atom_eq(Polynomial.var(t), PX)
        right = exists([t], atom_eq(Polynomial.var(t), PY))
        cubes = to_dnf(conjoin([left, right]))
        assert len(cubes) == 1
        cube = cubes[0]
        assert t not in cube.bound or all(
            t not in atom.polynomial.symbols
            for atom in cube.atoms
            if X in atom.polynomial.symbols
        )
        # The original free t still appears in the x-equation.
        x_atoms = [a for a in cube.atoms if X in a.polynomial.symbols]
        assert x_atoms and all(t in a.polynomial.symbols for a in x_atoms)

    def test_cube_limit_collapses_soundly(self):
        # 2^12 cubes would exceed a limit of 16; the result must still contain
        # the common atom of every disjunct.
        common = atom_le(PX, 0)
        disjuncts = []
        for i in range(12):
            disjuncts.append(
                disjoin([conjoin([common, atom_le(PY, i)]),
                         conjoin([common, atom_le(PY, -i)])])
            )
        formula = conjoin(disjuncts)
        cubes = to_dnf(formula, cube_limit=16)
        assert cubes
        assert len(cubes) <= 16
