"""Differential properties: fraction-free integer simplex vs Fraction oracle.

The production solver (:mod:`repro.polyhedra.simplex`) runs a fraction-free
integer tableau.  This module keeps a self-contained copy of the previous
``Fraction``-based dense tableau as an independent oracle and pins the two
against each other on random LPs: statuses must match exactly and optimal
values must be equal as exact rationals.  Feasibility, boundedness and the
optimum of an LP are properties of the problem, not of the tableau
representation, so any divergence is a bug in one of the solvers.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.formulas.symbols import Symbol
from repro.polyhedra.constraint import ConstraintKind, LinearConstraint
from repro.polyhedra import simplex
from repro.polyhedra.simplex import (
    exact_entails,
    exact_is_satisfiable,
    exact_maximize,
    int64_available,
    kernel_stats,
    reset_kernel_stats,
    set_simplex_kernel,
    simplex_kernel,
)

# --------------------------------------------------------------------- #
# The oracle: the pre-rewrite dense Fraction tableau (two-phase simplex,
# Bland's rule), trimmed to what the tests need.  Kept verbatim in spirit:
# same standard form, same pivot rules, per-cell Fraction arithmetic.
# --------------------------------------------------------------------- #
class _FractionTableau:
    def __init__(self, rows, rhs, basis):
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def pivot(self, row, col):
        pivot_value = self.rows[row][col]
        if pivot_value != 1:
            inv = Fraction(1) / pivot_value
            self.rows[row] = [a * inv if a else a for a in self.rows[row]]
            self.rhs[row] *= inv
        pivot_row = self.rows[row]
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            self.rows[r] = [
                a - factor * p if p else a for a, p in zip(self.rows[r], pivot_row)
            ]
            self.rhs[r] -= factor * self.rhs[row]
        self.basis[row] = col

    def optimize(self, objective, allowed):
        obj_row = list(objective)
        obj_value = Fraction(0)
        for i, basic_col in enumerate(self.basis):
            coeff = obj_row[basic_col]
            if coeff == 0:
                continue
            obj_row = [
                a - coeff * b if b else a for a, b in zip(obj_row, self.rows[i])
            ]
            obj_value -= coeff * self.rhs[i]
        while True:
            entering = None
            for col in range(self.ncols):
                if col in allowed and obj_row[col] > 0:
                    entering = col
                    break
            if entering is None:
                return "optimal", -obj_value
            leaving = None
            best_ratio = None
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    ratio = self.rhs[row] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[row] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = obj_row[entering]
            self.pivot(leaving, entering)
            obj_row = [
                a - coeff * b if b else a
                for a, b in zip(obj_row, self.rows[leaving])
            ]
            obj_value -= coeff * self.rhs[leaving]


def _reference_standard_form(objective, constraints):
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows, rhs = [], []
    slack_cursor = 0
    for constraint in constraints:
        row = [Fraction(0)] * ncols
        for s, c in constraint.coeffs:
            j = index[s]
            row[2 * j] += c
            row[2 * j + 1] -= c
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = Fraction(1)
            slack_cursor += 1
        rows.append(row)
        rhs.append(-constraint.constant)
    obj = [Fraction(0)] * ncols
    for s, c in objective.items():
        j = index[s]
        obj[2 * j] += Fraction(c)
        obj[2 * j + 1] -= Fraction(c)
    return rows, rhs, obj, ncols


def reference_maximize(objective, constraints):
    """The old solver, minus the equality presolve (pure two-phase simplex).

    Skipping the presolve makes the oracle maximally independent of the
    production code path: equalities reach the tableau untouched.
    Returns ``(status, value)``.
    """
    nontrivial = []
    for constraint in constraints:
        if constraint.is_contradiction:
            return "infeasible", None
        if not constraint.is_trivial:
            nontrivial.append(constraint)
    objective = {s: Fraction(c) for s, c in objective.items() if Fraction(c) != 0}
    if not nontrivial:
        if not objective:
            return "optimal", Fraction(0)
        return "unbounded", None
    rows, rhs, obj, ncols = _reference_standard_form(objective, nontrivial)
    nrows = len(rows)
    total_cols = ncols + nrows
    tab_rows, tab_rhs, basis = [], [], []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(Fraction(0) for _ in range(nrows))
        row[ncols + i] = Fraction(1)
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    tableau = _FractionTableau(tab_rows, tab_rhs, basis)
    phase1 = [Fraction(0)] * total_cols
    for i in range(nrows):
        phase1[ncols + i] = Fraction(-1)
    status, value = tableau.optimize(phase1, allowed=set(range(total_cols)))
    if status != "optimal" or value < 0:
        return "infeasible", None
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[i][j] != 0), None
            )
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    phase2 = list(obj) + [Fraction(0)] * nrows
    status, value = tableau.optimize(phase2, allowed=set(range(ncols)))
    if status == "unbounded":
        return "unbounded", None
    return "optimal", value


# --------------------------------------------------------------------- #
# Random LP generation
# --------------------------------------------------------------------- #
SYMBOLS = [Symbol(name) for name in ("x", "y", "z", "w")]

#: Rationals with small numerators and denominators, so the entry scaling
#: (common-denominator multiplication) is genuinely exercised.
fractions = st.builds(
    Fraction, st.integers(-6, 6), st.integers(1, 4)
)


@st.composite
def linear_constraints(draw):
    coeffs = {
        symbol: draw(fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=1, max_size=3, unique=True)
        )
    }
    kind = draw(
        st.sampled_from([ConstraintKind.LE, ConstraintKind.LE, ConstraintKind.EQ])
    )
    return LinearConstraint.make(coeffs, draw(fractions), kind)


@st.composite
def lp_problems(draw):
    constraints = draw(st.lists(linear_constraints(), min_size=1, max_size=6))
    objective = {
        symbol: draw(fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=0, max_size=3, unique=True)
        )
    }
    return objective, constraints


class TestIntegerTableauMatchesFractionOracle:
    @settings(max_examples=200, deadline=None)
    @given(lp_problems())
    def test_maximize_round_trip(self, problem):
        objective, constraints = problem
        expected_status, expected_value = reference_maximize(objective, constraints)
        result = exact_maximize(objective, constraints)
        assert result.status == expected_status
        if expected_status == "optimal":
            assert result.value == expected_value
            assert isinstance(result.value, Fraction)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(linear_constraints(), min_size=1, max_size=6))
    def test_satisfiability_round_trip(self, constraints):
        status, _ = reference_maximize({}, constraints)
        assert exact_is_satisfiable(constraints) == (status != "infeasible")

    @settings(max_examples=150, deadline=None)
    @given(st.lists(linear_constraints(), min_size=1, max_size=5), linear_constraints())
    def test_entailment_round_trip(self, constraints, candidate):
        """``C |= t + d <= 0``  iff  ``sup t <= -d`` (or C is infeasible)."""
        if candidate.kind is ConstraintKind.EQ:
            candidate = LinearConstraint.make(
                candidate.coeff_map, candidate.constant, ConstraintKind.LE
            )
        status, value = reference_maximize(candidate.coeff_map, constraints)
        if status == "infeasible":
            expected = True
        elif status == "unbounded":
            expected = False
        else:
            expected = value <= -candidate.constant
        assert exact_entails(constraints, candidate) == expected

    @settings(max_examples=100, deadline=None)
    @given(lp_problems())
    def test_optimum_is_attained_and_tight(self, problem):
        """An optimal value must be attainable up to entailment: the system
        must entail ``objective <= value`` but not ``objective <= value - 1``."""
        objective, constraints = problem
        result = exact_maximize(objective, constraints)
        if not result.is_optimal or not objective:
            return
        upper = LinearConstraint.make(
            dict(objective), -result.value, ConstraintKind.LE
        )
        tighter = LinearConstraint.make(
            dict(objective), -result.value + 1, ConstraintKind.LE
        )
        assert exact_entails(constraints, upper)
        assert not exact_entails(constraints, tighter)


# --------------------------------------------------------------------- #
# int64 fast path vs bignum path.  Both run the same pivot sequence; the
# only difference is the cell representation, so every status and value
# must agree exactly — including on coefficients scaled to straddle the
# int64 range, where the overflow guard must hand the LP to bignum.
# --------------------------------------------------------------------- #
#: Numerators around ±2^63: after common-denominator scaling these land on
#: both sides of the kernel's safety bound, so Hypothesis explores the
#: accept / construction-fallback / pivot-fallback frontier.
_near_int64 = st.one_of(
    st.integers(-(2**63) - 4, -(2**63 - 4)),
    st.integers(2**63 - 4, 2**63 + 4),
    st.integers(-(2**61), 2**61),
)

#: Small rationals mixed with near-boundary ones: small cells make the
#: int64 path actually run, huge cells make the guard actually fire.
extreme_fractions = st.one_of(
    fractions,
    st.builds(Fraction, _near_int64, st.integers(1, 3)),
)


@st.composite
def extreme_constraints(draw):
    coeffs = {
        symbol: draw(extreme_fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=1, max_size=3, unique=True)
        )
    }
    kind = draw(
        st.sampled_from([ConstraintKind.LE, ConstraintKind.LE, ConstraintKind.EQ])
    )
    return LinearConstraint.make(coeffs, draw(extreme_fractions), kind)


@st.composite
def extreme_lp_problems(draw):
    constraints = draw(st.lists(extreme_constraints(), min_size=1, max_size=6))
    objective = {
        symbol: draw(extreme_fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=0, max_size=3, unique=True)
        )
    }
    return objective, constraints


@pytest.fixture
def kernel_mode():
    """Pin, then restore, the process-wide kernel selection."""
    previous = simplex_kernel()
    yield set_simplex_kernel
    set_simplex_kernel(previous)


def _under_kernel(mode, function):
    previous = set_simplex_kernel(mode)
    try:
        return function()
    finally:
        set_simplex_kernel(previous)


needs_int64 = pytest.mark.skipif(
    not int64_available(), reason="numpy-backed int64 kernel not available"
)


@needs_int64
class TestInt64KernelMatchesBignum:
    @settings(max_examples=200, deadline=None)
    @given(extreme_lp_problems())
    def test_maximize_agrees(self, problem):
        objective, constraints = problem
        expected = _under_kernel("bignum", lambda: exact_maximize(objective, constraints))
        result = _under_kernel("int64", lambda: exact_maximize(objective, constraints))
        assert result.status == expected.status
        assert result.value == expected.value

    @settings(max_examples=150, deadline=None)
    @given(st.lists(extreme_constraints(), min_size=1, max_size=6))
    def test_satisfiability_agrees(self, constraints):
        expected = _under_kernel("bignum", lambda: exact_is_satisfiable(constraints))
        assert _under_kernel("int64", lambda: exact_is_satisfiable(constraints)) == expected

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(extreme_constraints(), min_size=1, max_size=5), extreme_constraints()
    )
    def test_entailment_agrees(self, constraints, candidate):
        expected = _under_kernel("bignum", lambda: exact_entails(constraints, candidate))
        assert _under_kernel("int64", lambda: exact_entails(constraints, candidate)) == expected

    @settings(max_examples=150, deadline=None)
    @given(lp_problems())
    def test_small_lps_agree_with_fraction_oracle_under_int64(self, problem):
        """Close the triangle: int64 must also match the Fraction oracle."""
        objective, constraints = problem
        expected_status, expected_value = reference_maximize(objective, constraints)
        result = _under_kernel("int64", lambda: exact_maximize(objective, constraints))
        assert result.status == expected_status
        if expected_status == "optimal":
            assert result.value == expected_value


@needs_int64
class TestOverflowFallback:
    #: Feasible, bounded chain LP with modest coefficients — solvable by
    #: either kernel, so the fallback's answer can be pinned exactly.
    def _chain_problem(self, scale=1):
        xs = SYMBOLS[:3]
        constraints = []
        for a, b in zip(xs, xs[1:]):
            constraints.append(LinearConstraint.make({a: scale, b: -scale}))
            constraints.append(
                LinearConstraint.make({b: scale, a: -scale}, -3 * scale)
            )
        for x in xs:
            constraints.append(LinearConstraint.make({x: 1}, -9))
            constraints.append(LinearConstraint.make({x: -1}, 0))
        objective = {x: Fraction(1) for x in xs}
        return objective, constraints

    def test_construction_overflow_falls_back(self, kernel_mode):
        """Coefficients beyond the bound never enter the int64 matrix."""
        kernel_mode("int64")
        objective, constraints = self._chain_problem(scale=2**62)
        reset_kernel_stats()
        result = exact_maximize(objective, constraints)
        stats = kernel_stats()
        assert stats["fallbacks"] >= 1
        assert stats["bignum"] >= 1
        assert stats["int64"] == 0
        expected = _under_kernel(
            "bignum", lambda: exact_maximize(objective, constraints)
        )
        assert (result.status, result.value) == (expected.status, expected.value)

    def test_pivot_overflow_detector_fires(self, kernel_mode, monkeypatch):
        """With the safety bound squeezed, mid-pivot growth must be caught
        and the whole tableau restarted on the bignum path — same answer."""
        kernel_mode("int64")
        objective, constraints = self._chain_problem()
        expected = _under_kernel(
            "bignum", lambda: exact_maximize(objective, constraints)
        )
        # Small enough that pivot products trip it, large enough that the
        # starting cells (<= 9) pass construction.
        monkeypatch.setattr(simplex, "_INT64_SAFE", 12)
        reset_kernel_stats()
        result = exact_maximize(objective, constraints)
        stats = kernel_stats()
        assert stats["fallbacks"] >= 1
        assert stats["int64"] == 0
        assert (result.status, result.value) == (expected.status, expected.value)

    def test_forced_int64_succeeds_without_fallback_on_small_cells(self, kernel_mode):
        kernel_mode("int64")
        objective, constraints = self._chain_problem()
        reset_kernel_stats()
        expected = _under_kernel(
            "bignum", lambda: exact_maximize(objective, constraints)
        )
        result = exact_maximize(objective, constraints)
        stats = kernel_stats()
        assert stats["int64"] >= 1
        assert stats["fallbacks"] == 0
        assert (result.status, result.value) == (expected.status, expected.value)


class TestKernelSelection:
    def test_set_kernel_returns_previous_and_validates(self, kernel_mode):
        previous = simplex_kernel()
        assert set_simplex_kernel("bignum") == previous
        assert simplex_kernel() == "bignum"
        with pytest.raises(ValueError):
            set_simplex_kernel("float128")
        assert simplex_kernel() == "bignum"

    def test_bignum_mode_never_touches_numpy(self, kernel_mode):
        kernel_mode("bignum")
        reset_kernel_stats()
        objective = {SYMBOLS[0]: Fraction(1)}
        constraints = [LinearConstraint.make({SYMBOLS[0]: 1}, -5)]
        exact_maximize(objective, constraints)
        stats = kernel_stats()
        assert stats["int64"] == 0
        assert stats["bignum"] >= 1

    @needs_int64
    def test_auto_mode_routes_small_tableaus_to_bignum(self, kernel_mode):
        """Below the cell floor the vectorisation overhead is a loss, so
        ``auto`` keeps tiny LPs on the plain path."""
        kernel_mode("auto")
        reset_kernel_stats()
        objective = {SYMBOLS[0]: Fraction(1)}
        constraints = [LinearConstraint.make({SYMBOLS[0]: 1}, -5)]
        exact_maximize(objective, constraints)
        assert kernel_stats()["int64"] == 0
