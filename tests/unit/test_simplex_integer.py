"""Differential properties: fraction-free integer simplex vs Fraction oracle.

The production solver (:mod:`repro.polyhedra.simplex`) runs a fraction-free
integer tableau.  This module keeps a self-contained copy of the previous
``Fraction``-based dense tableau as an independent oracle and pins the two
against each other on random LPs: statuses must match exactly and optimal
values must be equal as exact rationals.  Feasibility, boundedness and the
optimum of an LP are properties of the problem, not of the tableau
representation, so any divergence is a bug in one of the solvers.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.formulas.symbols import Symbol
from repro.polyhedra.constraint import ConstraintKind, LinearConstraint
from repro.polyhedra.simplex import (
    exact_entails,
    exact_is_satisfiable,
    exact_maximize,
)

# --------------------------------------------------------------------- #
# The oracle: the pre-rewrite dense Fraction tableau (two-phase simplex,
# Bland's rule), trimmed to what the tests need.  Kept verbatim in spirit:
# same standard form, same pivot rules, per-cell Fraction arithmetic.
# --------------------------------------------------------------------- #
class _FractionTableau:
    def __init__(self, rows, rhs, basis):
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def pivot(self, row, col):
        pivot_value = self.rows[row][col]
        if pivot_value != 1:
            inv = Fraction(1) / pivot_value
            self.rows[row] = [a * inv if a else a for a in self.rows[row]]
            self.rhs[row] *= inv
        pivot_row = self.rows[row]
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            self.rows[r] = [
                a - factor * p if p else a for a, p in zip(self.rows[r], pivot_row)
            ]
            self.rhs[r] -= factor * self.rhs[row]
        self.basis[row] = col

    def optimize(self, objective, allowed):
        obj_row = list(objective)
        obj_value = Fraction(0)
        for i, basic_col in enumerate(self.basis):
            coeff = obj_row[basic_col]
            if coeff == 0:
                continue
            obj_row = [
                a - coeff * b if b else a for a, b in zip(obj_row, self.rows[i])
            ]
            obj_value -= coeff * self.rhs[i]
        while True:
            entering = None
            for col in range(self.ncols):
                if col in allowed and obj_row[col] > 0:
                    entering = col
                    break
            if entering is None:
                return "optimal", -obj_value
            leaving = None
            best_ratio = None
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    ratio = self.rhs[row] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[row] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = obj_row[entering]
            self.pivot(leaving, entering)
            obj_row = [
                a - coeff * b if b else a
                for a, b in zip(obj_row, self.rows[leaving])
            ]
            obj_value -= coeff * self.rhs[leaving]


def _reference_standard_form(objective, constraints):
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows, rhs = [], []
    slack_cursor = 0
    for constraint in constraints:
        row = [Fraction(0)] * ncols
        for s, c in constraint.coeffs:
            j = index[s]
            row[2 * j] += c
            row[2 * j + 1] -= c
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = Fraction(1)
            slack_cursor += 1
        rows.append(row)
        rhs.append(-constraint.constant)
    obj = [Fraction(0)] * ncols
    for s, c in objective.items():
        j = index[s]
        obj[2 * j] += Fraction(c)
        obj[2 * j + 1] -= Fraction(c)
    return rows, rhs, obj, ncols


def reference_maximize(objective, constraints):
    """The old solver, minus the equality presolve (pure two-phase simplex).

    Skipping the presolve makes the oracle maximally independent of the
    production code path: equalities reach the tableau untouched.
    Returns ``(status, value)``.
    """
    nontrivial = []
    for constraint in constraints:
        if constraint.is_contradiction:
            return "infeasible", None
        if not constraint.is_trivial:
            nontrivial.append(constraint)
    objective = {s: Fraction(c) for s, c in objective.items() if Fraction(c) != 0}
    if not nontrivial:
        if not objective:
            return "optimal", Fraction(0)
        return "unbounded", None
    rows, rhs, obj, ncols = _reference_standard_form(objective, nontrivial)
    nrows = len(rows)
    total_cols = ncols + nrows
    tab_rows, tab_rhs, basis = [], [], []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(Fraction(0) for _ in range(nrows))
        row[ncols + i] = Fraction(1)
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    tableau = _FractionTableau(tab_rows, tab_rhs, basis)
    phase1 = [Fraction(0)] * total_cols
    for i in range(nrows):
        phase1[ncols + i] = Fraction(-1)
    status, value = tableau.optimize(phase1, allowed=set(range(total_cols)))
    if status != "optimal" or value < 0:
        return "infeasible", None
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[i][j] != 0), None
            )
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    phase2 = list(obj) + [Fraction(0)] * nrows
    status, value = tableau.optimize(phase2, allowed=set(range(ncols)))
    if status == "unbounded":
        return "unbounded", None
    return "optimal", value


# --------------------------------------------------------------------- #
# Random LP generation
# --------------------------------------------------------------------- #
SYMBOLS = [Symbol(name) for name in ("x", "y", "z", "w")]

#: Rationals with small numerators and denominators, so the entry scaling
#: (common-denominator multiplication) is genuinely exercised.
fractions = st.builds(
    Fraction, st.integers(-6, 6), st.integers(1, 4)
)


@st.composite
def linear_constraints(draw):
    coeffs = {
        symbol: draw(fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=1, max_size=3, unique=True)
        )
    }
    kind = draw(
        st.sampled_from([ConstraintKind.LE, ConstraintKind.LE, ConstraintKind.EQ])
    )
    return LinearConstraint.make(coeffs, draw(fractions), kind)


@st.composite
def lp_problems(draw):
    constraints = draw(st.lists(linear_constraints(), min_size=1, max_size=6))
    objective = {
        symbol: draw(fractions)
        for symbol in draw(
            st.lists(st.sampled_from(SYMBOLS), min_size=0, max_size=3, unique=True)
        )
    }
    return objective, constraints


class TestIntegerTableauMatchesFractionOracle:
    @settings(max_examples=200, deadline=None)
    @given(lp_problems())
    def test_maximize_round_trip(self, problem):
        objective, constraints = problem
        expected_status, expected_value = reference_maximize(objective, constraints)
        result = exact_maximize(objective, constraints)
        assert result.status == expected_status
        if expected_status == "optimal":
            assert result.value == expected_value
            assert isinstance(result.value, Fraction)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(linear_constraints(), min_size=1, max_size=6))
    def test_satisfiability_round_trip(self, constraints):
        status, _ = reference_maximize({}, constraints)
        assert exact_is_satisfiable(constraints) == (status != "infeasible")

    @settings(max_examples=150, deadline=None)
    @given(st.lists(linear_constraints(), min_size=1, max_size=5), linear_constraints())
    def test_entailment_round_trip(self, constraints, candidate):
        """``C |= t + d <= 0``  iff  ``sup t <= -d`` (or C is infeasible)."""
        if candidate.kind is ConstraintKind.EQ:
            candidate = LinearConstraint.make(
                candidate.coeff_map, candidate.constant, ConstraintKind.LE
            )
        status, value = reference_maximize(candidate.coeff_map, constraints)
        if status == "infeasible":
            expected = True
        elif status == "unbounded":
            expected = False
        else:
            expected = value <= -candidate.constant
        assert exact_entails(constraints, candidate) == expected

    @settings(max_examples=100, deadline=None)
    @given(lp_problems())
    def test_optimum_is_attained_and_tight(self, problem):
        """An optimal value must be attainable up to entailment: the system
        must entail ``objective <= value`` but not ``objective <= value - 1``."""
        objective, constraints = problem
        result = exact_maximize(objective, constraints)
        if not result.is_optimal or not objective:
            return
        upper = LinearConstraint.make(
            dict(objective), -result.value, ConstraintKind.LE
        )
        tighter = LinearConstraint.make(
            dict(objective), -result.value + 1, ConstraintKind.LE
        )
        assert exact_entails(constraints, upper)
        assert not exact_entails(constraints, tighter)
