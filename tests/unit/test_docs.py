"""The documentation layer stays truthful.

Runs the same checks as CI's ``docs`` job (``tools/check_docs.py``), with
an in-process ``--help`` runner so the fast suite doesn't fork a Python
per subcommand: every ``repro`` invocation shown in README/docs must name
a real subcommand and only flags that subcommand accepts, and every
relative markdown link must resolve.
"""

import sys
from pathlib import Path
from typing import Optional


REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

from repro.cli import build_parser  # noqa: E402


def in_process_help(subcommand: str) -> Optional[str]:
    """Format a subparser's help without forking (mirrors `repro X --help`)."""
    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        subparser = action.choices.get(subcommand)
        if subparser is not None:
            return subparser.format_help()
    return None


class TestDocsTree:
    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in ("architecture.md", "cli.md", "caching.md"):
            assert (REPO_ROOT / "docs" / page).is_file()
            assert f"docs/{page}" in readme

    def test_no_broken_intra_repo_links(self):
        assert check_docs.check_links(REPO_ROOT) == []

    def test_documented_cli_invocations_are_current(self):
        assert check_docs.check_cli_invocations(in_process_help, REPO_ROOT) == []

    def test_every_subcommand_is_documented_in_cli_md(self):
        cli_md = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        (subparsers,) = parser._subparsers._group_actions  # noqa: SLF001
        for subcommand in subparsers.choices:
            assert f"repro {subcommand}" in cli_md, (
                f"docs/cli.md does not document `repro {subcommand}`"
            )

    def test_checker_catches_a_stale_flag(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "```console\n$ repro bench --no-such-flag\n```\n", encoding="utf-8"
        )
        problems = check_docs.check_cli_invocations(in_process_help, tmp_path)
        assert problems and "--no-such-flag" in problems[0]

    def test_checker_catches_a_broken_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[gone](docs/gone.md)", encoding="utf-8")
        problems = check_docs.check_links(tmp_path)
        assert problems and "docs/gone.md" in problems[0]

    def test_package_init_docstrings_state_contracts(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.iter_modules(repro.__path__, "repro."):
            if not info.ispkg:
                continue
            module = importlib.import_module(info.name)
            assert module.__doc__ and len(module.__doc__.strip()) > 60, (
                f"{info.name}/__init__.py needs a contract docstring"
            )
