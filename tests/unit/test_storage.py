"""The CacheStorage conformance suite: one contract, every backend.

Each backend — the directory default, the in-memory test store, the
generic prefix view, and the HTTP-backed remote store — must present the
same observable semantics: whole-entry round-trips, absent entries reading
``None``, last-writer-wins overwrites, delete reporting whether anything
existed, batch reads matching per-entry reads, namespace views that never
leak reads into each other, and a uniform ``stats()`` shape.  Testing the
contract once, parameterized, replaces the ad-hoc per-backend tests and is
what lets a new transport claim drop-in status.

The remote backend runs against a real :class:`AnalysisServer` (event loop
in a thread, no worker forks — the pool is a stub), so the conformance
answers here exercise the actual ``/v1/cache`` routes, not a mock.
"""

import pickle
import threading
import time

import pytest

from repro.engine import DirectoryStorage, MemoryStorage, ResultCache
from repro.engine.storage import PrefixStorage
from repro.service.remote import RemoteStorage
from repro.service.server import AnalysisServer


class _StubPool:
    """Just enough pool for AnalysisServer when only cache routes matter."""

    workers = 1
    cache = None
    parallel_sccs = None

    def stats_dict(self):
        return {}

    def busy_workers(self):
        return 0

    def close(self):
        pass


def _start_cache_server():
    cache = ResultCache(storage=MemoryStorage())
    server = AnalysisServer(_StubPool(), port=0, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    url = f"http://{host}:{port}"
    _wait_until_serving(url)
    return server, thread, url


def _wait_until_serving(url, deadline=10.0):
    from repro.service.client import ServiceClient, ServiceError

    started = time.monotonic()
    while True:
        try:
            with ServiceClient(url, timeout=2.0) as client:
                client.healthz()
            return
        except ServiceError:
            if time.monotonic() - started > deadline:
                raise
            time.sleep(0.02)


def _stop_cache_server(server, thread):
    server.shutdown()
    server.close()
    thread.join(5)


BACKENDS = ["directory", "memory", "prefix-directory", "prefix-memory", "remote"]

#: Prefix views share their inner backend's raw listing, so namespaced
#: entries legitimately appear in the parent's names (see storage.py).
LISTING_ISOLATED = {"directory", "memory", "remote"}


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    if request.param == "directory":
        yield request.param, DirectoryStorage(tmp_path / "store")
    elif request.param == "memory":
        yield request.param, MemoryStorage()
    elif request.param == "prefix-directory":
        yield request.param, PrefixStorage(DirectoryStorage(tmp_path / "store"), "view")
    elif request.param == "prefix-memory":
        yield request.param, PrefixStorage(MemoryStorage(), "view")
    else:
        server, thread, url = _start_cache_server()
        store = RemoteStorage(url)
        yield request.param, store
        store.close()
        _stop_cache_server(server, thread)


class TestConformance:
    def test_absent_entry_reads_none(self, backend):
        _, store = backend
        assert store.read("missing-entry") is None
        assert store.size_of("missing-entry") == 0

    def test_round_trip_preserves_bytes(self, backend):
        _, store = backend
        data = b'{"payload": 1}\x00\xff binary tail'
        store.write("entry-a", data)
        assert store.read("entry-a") == data
        assert store.size_of("entry-a") == len(data)

    def test_overwrite_is_last_writer_wins(self, backend):
        _, store = backend
        store.write("entry-a", b"first")
        store.write("entry-a", b"second")
        assert store.read("entry-a") == b"second"

    def test_delete_reports_whether_an_entry_existed(self, backend):
        _, store = backend
        store.write("entry-a", b"data")
        assert store.delete("entry-a") is True
        assert store.read("entry-a") is None
        assert store.delete("entry-a") is False

    def test_names_lists_exactly_the_written_entries(self, backend):
        _, store = backend
        store.write("entry-a", b"1")
        store.write("entry-b", b"2")
        store.delete("entry-a")
        assert sorted(store.names()) == ["entry-b"]

    def test_read_many_matches_per_entry_reads(self, backend):
        _, store = backend
        store.write("entry-a", b"aa")
        store.write("entry-b", b"bb")
        found = store.read_many(["entry-a", "missing", "entry-b"])
        assert found == {"entry-a": b"aa", "entry-b": b"bb"}

    def test_write_many_stores_every_pair(self, backend):
        _, store = backend
        store.write_many({"entry-a": b"aa", "entry-b": b"bb"})
        assert store.read("entry-a") == b"aa"
        assert store.read("entry-b") == b"bb"

    def test_namespaces_do_not_leak_reads(self, backend):
        _, store = backend
        first = store.namespace("memo")
        second = store.namespace("incremental")
        first.write("shared-name", b"from-first")
        assert second.read("shared-name") is None
        assert store.read("shared-name") is None
        assert first.read("shared-name") == b"from-first"

    def test_namespaced_entries_stay_out_of_the_parent_listing(self, backend):
        name, store = backend
        if name not in LISTING_ISOLATED:
            pytest.skip("prefix views share the inner backend's raw listing")
        store.write("entry-a", b"top")
        store.namespace("memo").write("snapshot", b"ns")
        assert sorted(store.names()) == ["entry-a"]
        assert sorted(store.namespace("memo").names()) == ["snapshot"]

    def test_stats_has_the_uniform_shape(self, backend):
        _, store = backend
        store.write("entry-a", b"12345")
        stats = store.stats()
        assert isinstance(stats["location"], str) and stats["location"]
        assert stats["entries"] == 1
        assert stats["bytes"] == 5
        assert isinstance(stats["namespaces"], dict)

    def test_stats_counts_namespaces_when_enumerable(self, backend):
        name, store = backend
        if name not in LISTING_ISOLATED:
            pytest.skip("prefix views cannot enumerate their namespaces")
        store.namespace("memo").write("snapshot", b"123")
        namespaces = store.stats()["namespaces"]
        assert namespaces["memo"] == {"entries": 1, "bytes": 3}

    def test_result_cache_treats_corruption_as_a_miss(self, backend):
        _, store = backend
        cache = ResultCache(storage=store)
        key = "c" * 64
        store.write(key, b"{not json")
        assert cache.get(key) is None
        assert cache.get_many([key]) == {}
        cache.put(key, {"proved": True})
        assert cache.get(key) == {"proved": True}
        assert cache.get_many([key]) == {key: {"proved": True}}


class TestRemoteSpecifics:
    """Semantics only the HTTP backend has: failure mapping, fork safety."""

    @pytest.fixture()
    def remote(self):
        server, thread, url = _start_cache_server()
        store = RemoteStorage(url)
        yield server, store
        store.close()
        _stop_cache_server(server, thread)

    def test_unreachable_host_degrades_reads_to_misses(self):
        store = RemoteStorage("http://127.0.0.1:1")
        assert store.read("a" * 64) is None
        with pytest.raises(OSError):
            store.write("a" * 64, b"data")
        with pytest.raises(OSError):
            list(store.names())
        with pytest.raises(OSError):
            store.stats()

    def test_result_cache_put_swallows_unreachable_writes(self):
        cache = ResultCache(storage=RemoteStorage("http://127.0.0.1:1"))
        cache.put("a" * 64, {"proved": True})  # must not raise
        assert cache.get("a" * 64) is None

    def test_pickle_round_trip_keeps_namespace_and_url(self, remote):
        _, store = remote
        memo = store.namespace("memo")
        memo.write("snapshot", b"state")
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.read("snapshot") == b"state"
        root_clone = pickle.loads(pickle.dumps(store))
        assert root_clone.read("snapshot") is None

    def test_bad_entry_names_are_rejected_not_routed(self, remote):
        _, store = remote
        from repro.service.client import ServiceHTTPError

        with pytest.raises(ServiceHTTPError) as excinfo:
            store._service().request_bytes("GET", "cache/results/..%2Fescape")
        assert excinfo.value.status == 400

    def test_stats_reports_the_url_as_location(self, remote):
        _, store = remote
        assert store.stats()["location"] == store.location()
        assert store.location().startswith("http://")
