"""Unit tests for statement semantics, CFG construction, call graphs, and the interpreter."""

import pytest

from repro.abstraction import formula_entails, is_formula_satisfiable
from repro.formulas import Polynomial, atom_eq, atom_ge, atom_le, conjoin, post, pre
from repro.lang import (
    Interpreter,
    AssertionFailure,
    build_call_graph,
    build_cfg,
    parse_program,
)
from repro.lang import ast
from repro.lang.semantics import (
    SemanticsError,
    assign_transition,
    assume_transition,
    translate_condition,
    translate_expression,
)


class TestExpressionSemantics:
    def test_linear_expression(self):
        translated = translate_expression(
            ast.BinOp("+", ast.BinOp("*", ast.IntLit(2), ast.VarRef("x")), ast.IntLit(3))
        )
        assert translated.value == 2 * Polynomial.var(pre("x")) + 3
        assert not translated.fresh_symbols

    def test_multiplication_of_variables_is_nonlinear(self):
        translated = translate_expression(ast.BinOp("*", ast.VarRef("x"), ast.VarRef("y")))
        assert not translated.value.is_linear

    def test_division_by_two_models_floor(self):
        translated = translate_expression(ast.BinOp("/", ast.VarRef("n"), ast.IntLit(2)))
        # q with 2q <= n <= 2q + 1
        assert len(translated.fresh_symbols) == 1
        q = translated.fresh_symbols[0]
        n = Polynomial.var(pre("n"))
        pq = Polynomial.var(q)
        assert formula_entails(translated.constraints, atom_le(2 * pq, n))
        assert formula_entails(translated.constraints, atom_le(n, 2 * pq + 1))

    def test_division_by_nonconstant_rejected(self):
        with pytest.raises(SemanticsError):
            translate_expression(ast.BinOp("/", ast.VarRef("n"), ast.VarRef("m")))

    def test_bounded_nondet(self):
        translated = translate_expression(ast.Nondet(ast.IntLit(0), ast.VarRef("size")))
        v = Polynomial.var(translated.fresh_symbols[0])
        assert formula_entails(translated.constraints, atom_ge(v, 0))
        assert formula_entails(
            translated.constraints, atom_le(v, Polynomial.var(pre("size")) - 1)
        )

    def test_array_read_is_unconstrained(self):
        translated = translate_expression(ast.ArrayRead("A", ast.VarRef("i")))
        assert translated.constraints is not None
        assert len(translated.fresh_symbols) == 1

    def test_max_expression(self):
        translated = translate_expression(ast.MinMax(True, ast.VarRef("a"), ast.VarRef("b")))
        value = Polynomial.var(translated.fresh_symbols[-1])
        assert formula_entails(
            translated.constraints, atom_ge(value, Polynomial.var(pre("a")))
        )
        assert formula_entails(
            translated.constraints, atom_ge(value, Polynomial.var(pre("b")))
        )

    def test_ternary_with_nondet(self):
        expr = ast.Ternary(ast.NondetBool(), ast.VarRef("n"), ast.IntLit(0))
        translated = translate_expression(expr)
        value = Polynomial.var(translated.fresh_symbols[-1])
        # The value is either n or 0 but nothing stronger.
        n = Polynomial.var(pre("n"))
        assert not formula_entails(translated.constraints, atom_eq(value, n))
        assert is_formula_satisfiable(conjoin([translated.constraints, atom_eq(value, n)]))
        assert is_formula_satisfiable(conjoin([translated.constraints, atom_eq(value, 0)]))


class TestConditionSemantics:
    def test_strict_comparison_tightened(self):
        formula = translate_condition(ast.Compare("<", ast.VarRef("i"), ast.VarRef("n")))
        i, n = Polynomial.var(pre("i")), Polynomial.var(pre("n"))
        assert formula_entails(formula, atom_le(i, n - 1))

    def test_not_equal_is_disjunctive(self):
        formula = translate_condition(ast.Compare("!=", ast.VarRef("x"), ast.IntLit(0)))
        x = Polynomial.var(pre("x"))
        assert not formula_entails(formula, atom_ge(x, 1))
        assert formula_entails(formula, atom_ge(x * x, 1))

    def test_negation_of_conjunction(self):
        condition = ast.NotCond(
            ast.BoolOp(
                "&&",
                ast.Compare(">", ast.VarRef("x"), ast.IntLit(0)),
                ast.Compare(">", ast.VarRef("y"), ast.IntLit(0)),
            )
        )
        formula = translate_condition(condition)
        x, y = Polynomial.var(pre("x")), Polynomial.var(pre("y"))
        # Consistent with x <= 0, and with y <= 0, but does not entail x <= 0.
        assert is_formula_satisfiable(conjoin([formula, atom_le(x, 0)]))
        assert not formula_entails(formula, atom_le(x, 0))

    def test_nondet_bool_is_unconstrained(self):
        from repro.formulas import TRUE

        assert translate_condition(ast.NondetBool()) == TRUE


class TestTransitions:
    def test_assign_transition(self):
        transition = assign_transition("x", ast.BinOp("+", ast.VarRef("x"), ast.IntLit(1)))
        assert transition.footprint == frozenset({"x"})
        formula = transition.formula
        assert formula_entails(
            formula, atom_eq(Polynomial.var(post("x")), Polynomial.var(pre("x")) + 1)
        )

    def test_compose_assignments(self):
        first = assign_transition("x", ast.BinOp("+", ast.VarRef("x"), ast.IntLit(1)))
        second = assign_transition("x", ast.BinOp("*", ast.IntLit(2), ast.VarRef("x")))
        composed = first.compose(second)
        # x' = 2(x + 1)
        assert formula_entails(
            composed.formula,
            atom_eq(Polynomial.var(post("x")), 2 * Polynomial.var(pre("x")) + 2),
        )

    def test_compose_frames_untouched_variables(self):
        first = assign_transition("x", ast.IntLit(1))
        second = assign_transition("y", ast.VarRef("x"))
        composed = first.compose(second)
        assert formula_entails(
            composed.to_formula(["x", "y", "z"]),
            atom_eq(Polynomial.var(post("z")), Polynomial.var(pre("z"))),
        )
        assert formula_entails(
            composed.formula, atom_eq(Polynomial.var(post("y")), 1)
        )

    def test_join_of_assignments(self):
        first = assign_transition("x", ast.IntLit(1))
        second = assign_transition("x", ast.IntLit(5))
        joined = first.join(second)
        xp = Polynomial.var(post("x"))
        assert not formula_entails(joined.formula, atom_eq(xp, 1))
        assert is_formula_satisfiable(conjoin([joined.formula, atom_eq(xp, 5)]))

    def test_assume_transition_footprint_empty(self):
        transition = assume_transition(ast.Compare(">=", ast.VarRef("n"), ast.IntLit(0)))
        assert transition.footprint == frozenset()


SUBSET_SUM_SOURCE = """
int nTicks;
int found;
int subsetSumAux(int *A, int i, int n, int sum) {
    nTicks++;
    if (i >= n) {
        if (sum == 0) { found = 1; }
        return 0;
    }
    int size = subsetSumAux(A, i + 1, n, sum + A[i]);
    if (found != 0) { return size + 1; }
    size = subsetSumAux(A, i + 1, n, sum);
    return size;
}
int subsetSum(int *A, int n) {
    found = 0;
    return subsetSumAux(A, 0, n, 0);
}
"""


class TestCfg:
    def test_straight_line(self):
        program = parse_program("int f(int n) { int x = n + 1; return x; }")
        cfg = build_cfg(program.procedure("f"))
        assert cfg.entry == 0 and cfg.exit == 1
        assert not cfg.call_edges
        assert cfg.parameters == ("n",)
        assert "x" in cfg.locals

    def test_if_produces_two_assume_edges(self):
        program = parse_program("int f(int n) { if (n > 0) { n = 1; } else { n = 2; } return n; }")
        cfg = build_cfg(program.procedure("f"))
        assume_labels = [e.label for e in cfg.weight_edges if e.label.startswith("assume")]
        assert len(assume_labels) == 2

    def test_while_produces_back_edge(self):
        program = parse_program("int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }")
        cfg = build_cfg(program.procedure("f"))
        # There is a cycle: some edge's target has a lower vertex id than its source.
        assert any(e.target < e.source for e in cfg.weight_edges)

    def test_call_edges_and_hoisting(self):
        program = parse_program(SUBSET_SUM_SOURCE)
        cfg = build_cfg(program.procedure("subsetSumAux"))
        assert len(cfg.call_edges) == 2
        assert all(edge.callee == "subsetSumAux" for edge in cfg.call_edges)
        assert all(edge.result is not None for edge in cfg.call_edges)

    def test_nested_call_hoisting(self):
        program = parse_program(
            "int f(int x) { if (x > 100) { return x - 10; } return f(f(x + 11)); }"
        )
        cfg = build_cfg(program.procedure("f"))
        assert len(cfg.call_edges) == 2

    def test_assertions_recorded(self):
        program = parse_program("int f(int n) { assert(n >= 0); return n; }")
        cfg = build_cfg(program.procedure("f"))
        assert len(cfg.assertions) == 1
        assert cfg.assertions[0].procedure == "f"

    def test_variables_include_globals_and_return(self):
        program = parse_program(SUBSET_SUM_SOURCE)
        cfg = build_cfg(program.procedure("subsetSumAux"))
        variables = cfg.variables(program.global_names)
        assert "nTicks" in variables and "return" in variables and "i" in variables


class TestCallGraph:
    def test_simple_recursion(self):
        program = parse_program(SUBSET_SUM_SOURCE)
        graph = build_call_graph(program)
        assert "subsetSumAux" in graph.callees("subsetSum")
        assert "subsetSumAux" in graph.callees("subsetSumAux")
        assert graph.recursive_procedures() == frozenset({"subsetSumAux"})

    def test_mutual_recursion_component(self):
        program = parse_program(
            """
            int g;
            void P1(int n) { if (n <= 1) { g++; return; } for (int i = 0; i < 18; i++) { P2(n - 1); } }
            void P2(int n) { if (n <= 1) { g++; return; } for (int i = 0; i < 2; i++) { P1(n - 1); } }
            """
        )
        graph = build_call_graph(program)
        components = graph.strongly_connected_components()
        assert ["P1", "P2"] in components
        assert graph.is_recursive(["P1", "P2"])

    def test_topological_order_callees_first(self):
        program = parse_program(
            """
            int f() { return 1; }
            int g() { return f(); }
            int h() { return g(); }
            """
        )
        graph = build_call_graph(program)
        order = [c[0] for c in graph.strongly_connected_components()]
        assert order.index("f") < order.index("g") < order.index("h")


class TestInterpreter:
    def test_hanoi_cost_is_exponential(self):
        program = parse_program(
            """
            int counter;
            void applyHanoi(int n) {
                if (n == 0) { return; }
                counter++;
                applyHanoi(n - 1);
                applyHanoi(n - 1);
            }
            """
        )
        interpreter = Interpreter(program)
        result = interpreter.run("applyHanoi", [5])
        assert result.globals["counter"] == 2**5 - 1
        assert result.max_recursion_depth == 6

    def test_return_value(self):
        program = parse_program("int f(int n) { return 2 * f0(n) + 1; } int f0(int n) { return n; }")
        result = Interpreter(program).run("f", [10])
        assert result.return_value == 21

    def test_loop_and_division(self):
        program = parse_program(
            "int halves(int n) { int count = 0; while (n > 1) { n = n / 2; count++; } return count; }"
        )
        result = Interpreter(program).run("halves", [64])
        assert result.return_value == 6

    def test_assertion_failure_raised(self):
        program = parse_program("int f(int n) { assert(n > 0); return n; }")
        with pytest.raises(AssertionFailure):
            Interpreter(program).run("f", [0])

    def test_nondet_bounded_respected(self):
        program = parse_program(
            "int pick(int n) { int x = nondet(0, n); assert(x >= 0); assert(x < n); return x; }"
        )
        result = Interpreter(program).run("pick", [7])
        assert 0 <= result.return_value < 7

    def test_mutual_recursion_example_counts(self):
        program = parse_program(
            """
            int g;
            void P1(int n) { if (n <= 1) { g++; return; } for (int i = 0; i < 18; i++) { P2(n - 1); } }
            void P2(int n) { if (n <= 1) { g++; return; } for (int i = 0; i < 2; i++) { P1(n - 1); } }
            """
        )
        result = Interpreter(program, max_steps=10_000_000).run("P1", [3])
        # P1(3) -> 18 calls P2(2) -> each 2 calls P1(1) -> each g++ once.
        assert result.globals["g"] == 36
