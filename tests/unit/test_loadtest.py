"""Unit coverage of the service client and loadtest harness (no sockets).

The network-facing behaviour (keep-alive, /v1 fallback, live load) is
covered by the integration suite; here the pure pieces are pinned —
percentile maths, URL parsing, envelope decoding, the open-loop schedule
driven through a stub client, and the BENCH_service.json entry shape.
"""

import json
import threading

import pytest

from repro.engine.loadtest import DEFAULT_PROGRAM, loadtest_entry, run_loadtest
from repro.engine.profile import percentile
from repro.service.client import (
    MalformedResponse,
    Response,
    ServiceClient,
    ServiceHTTPError,
    ServiceUnreachable,
    _parse_url,
)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_single_sample_is_every_percentile(self):
        for q in (0, 50, 95, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_nearest_rank_returns_observed_values(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 75) == 3.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 0) == 1.0
        # Never interpolated: the result is always a member of the sample.
        for q in range(0, 101, 7):
            assert percentile(values, q) in values

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)

    def test_out_of_range_rank_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_monotone_in_rank(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        quantiles = [percentile(values, q) for q in (10, 50, 90, 99)]
        assert quantiles == sorted(quantiles)


class TestParseUrl:
    def test_plain_host_port(self):
        assert _parse_url("http://127.0.0.1:8734") == ("127.0.0.1", 8734, "")

    def test_scheme_optional(self):
        assert _parse_url("127.0.0.1:8080") == ("127.0.0.1", 8080, "")

    def test_default_port(self):
        assert _parse_url("http://example.test") == ("example.test", 80, "")

    def test_path_prefix_kept_without_trailing_slash(self):
        assert _parse_url("http://h:1/svc/") == ("h", 1, "/svc")

    def test_https_is_rejected(self):
        with pytest.raises(ValueError):
            _parse_url("https://h:1")

    def test_empty_host_is_rejected(self):
        with pytest.raises(ValueError):
            _parse_url("http://")


class TestEnvelopeDecoding:
    def test_v1_envelope(self):
        document = {
            "error": {
                "code": "queue_full",
                "message": "full",
                "detail": {"capacity": 3},
            },
            "request_id": "r000042",
        }
        with pytest.raises(ServiceHTTPError) as error:
            ServiceClient._raise_http_error(429, document, {"Retry-After": "2"})
        assert error.value.status == 429
        assert error.value.code == "queue_full"
        assert error.value.message == "full"
        assert error.value.detail == {"capacity": 3}
        assert error.value.request_id == "r000042"
        assert error.value.retry_after == 2.0

    def test_legacy_string_error_body(self):
        with pytest.raises(ServiceHTTPError) as error:
            ServiceClient._raise_http_error(400, {"error": "bad thing"}, {})
        assert error.value.code == ""
        assert error.value.message == "bad thing"

    def test_non_object_body(self):
        with pytest.raises(ServiceHTTPError) as error:
            ServiceClient._raise_http_error(503, ["upstream down"], {})
        assert error.value.status == 503
        assert error.value.message == "HTTP 503"

    def test_malformed_retry_after_is_ignored(self):
        with pytest.raises(ServiceHTTPError) as error:
            ServiceClient._raise_http_error(429, {}, {"Retry-After": "soon"})
        assert error.value.retry_after is None

    def test_non_json_payload_is_malformed_response(self):
        with pytest.raises(MalformedResponse):
            ServiceClient._decode(b"<html>gateway</html>", 502)

    def test_response_properties(self):
        response = Response(
            200, {"ok": True}, {"X-Request-Id": "r1", "Deprecation": "true"}, 0.01
        )
        assert response.request_id == "r1"
        assert response.deprecated
        assert not Response(200, {}, {}, 0.0).deprecated


class _StubClient:
    """A ServiceClient stand-in with a scripted per-call outcome."""

    _lock = threading.Lock()

    def __init__(self, outcomes, calls):
        self._outcomes = outcomes
        self._calls = calls

    def analyze(self, document, deadline_ms=None):
        with self._lock:
            index = len(self._calls)
            self._calls.append((dict(document), deadline_ms))
        outcome = self._outcomes[index % len(self._outcomes)]
        if isinstance(outcome, Exception):
            raise outcome
        return Response(outcome, {"outcome": "ok"}, {}, 0.001)

    def close(self):
        pass


class TestRunLoadtest:
    def _run(self, outcomes, rps=50, duration=0.2, **kwargs):
        calls = []

        def factory(url, timeout=None):
            return _StubClient(outcomes, calls)

        report = run_loadtest(
            "http://stub:1",
            rps=rps,
            duration=duration,
            concurrency=2,
            client_factory=factory,
            **kwargs,
        )
        return report, calls

    def test_all_served(self):
        report, calls = self._run([200])
        assert report["requested"] == 10
        assert report["completed"] == 10
        assert report["served_2xx"] == 10
        assert report["unreachable"] == 0
        assert report["throughput_rps"] > 0
        assert report["latency"]["p50_ms"] is not None
        assert report["latency"]["p50_ms"] <= report["latency"]["p99_ms"]
        assert all(document["source"] == DEFAULT_PROGRAM for document, _ in calls)

    def test_status_mix_is_classified(self):
        report, _ = self._run(
            [
                200,
                ServiceHTTPError(429, "queue_full", "full"),
                ServiceHTTPError(504, "deadline_exceeded", "late"),
                ServiceUnreachable("down"),
            ]
        )
        assert report["requested"] == 10
        assert report["served_2xx"] == 3
        assert report["rejected_429"] == 3
        assert report["deadline_504"] == 2
        assert report["unreachable"] == 2
        assert report["completed"] == 8
        assert report["statuses"] == {"200": 3, "429": 3, "504": 2, "unreachable": 2}

    def test_deadline_and_document_are_passed_through(self):
        report, calls = self._run([200], deadline_ms=250, document={"source": "x"})
        assert report["deadline_ms"] == 250
        assert calls and all(
            document == {"source": "x"} and deadline == 250
            for document, deadline in calls
        )

    def test_open_loop_schedule_is_not_closed_loop(self):
        # 10 requests at 50 rps take >= 0.18s of schedule even though every
        # stub call is instant: the generator paces, it does not burst.
        report, _ = self._run([200])
        assert report["elapsed_seconds"] >= 0.15

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_loadtest("http://stub:1", rps=0)
        with pytest.raises(ValueError):
            run_loadtest("http://stub:1", duration=-1)
        with pytest.raises(ValueError):
            run_loadtest("http://stub:1", concurrency=0)


class TestLoadtestEntry:
    def test_entry_shape(self):
        report, _ = TestRunLoadtest()._run([200])
        entry = loadtest_entry(report, label="unit")
        assert entry["kind"] == "service"
        assert entry["suite"] == "service"
        assert entry["label"] == "unit"
        assert entry["created"].endswith("Z")
        assert {row["name"] for row in entry["rows"]} == {
            "analyze/p50",
            "analyze/p95",
            "analyze/p99",
        }
        for row in entry["rows"]:
            assert row["seconds"] >= 0
        assert entry["totals"]["served_2xx"] == 10
        assert entry["report"]["url"] == "http://stub:1"
        # The entry is JSON-serialisable as recorded.
        json.dumps(entry)

    def test_missing_latencies_drop_rows(self):
        entry = loadtest_entry(
            {"latency": {"p50_ms": None, "p95_ms": None, "p99_ms": None}}
        )
        assert entry["rows"] == []
