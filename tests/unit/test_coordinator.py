"""The --distribute coordinator: host parsing, wire round-trips, retries.

These tests run the real coordinator logic against fake clients (no
sockets), pinning the contracts the integration layer then exercises over
real services: tasks round-trip through the batch wire format with their
cache material — and therefore shard assignment — intact, shards fan out
in suite-recoverable order, unreachable hosts are retried on survivors and
marked dead for later shards, and a shard with no live host degrades to
explicit error records instead of a shortened report.
"""

import pytest

from repro.engine import AnalysisTask
from repro.engine.cache import cache_key
from repro.engine.shard import shard_index
from repro.core import ChoraOptions
from repro.service.client import ServiceHTTPError, ServiceUnreachable
from repro.service.coordinator import distribute_batch, parse_hosts, task_payload
from repro.service.server import task_from_request


class TestParseHosts:
    def test_bare_host_ports_are_normalized_to_urls(self):
        assert parse_hosts("127.0.0.1:8001,127.0.0.1:8002") == [
            "http://127.0.0.1:8001",
            "http://127.0.0.1:8002",
        ]

    def test_explicit_scheme_is_accepted(self):
        assert parse_hosts("http://box:80") == ["http://box:80"]

    @pytest.mark.parametrize(
        "spec",
        ["", " , ", "127.0.0.1:8001,", "127.0.0.1:8001,127.0.0.1:8001"],
    )
    def test_empty_and_duplicate_hosts_are_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_hosts(spec)

    def test_https_is_rejected(self):
        with pytest.raises(ValueError):
            parse_hosts("https://box:443")


class TestTaskPayload:
    def tasks(self):
        return [
            AnalysisTask(
                name="plain",
                source="int main() { return 0; }",
                kind="analyze",
                suite="toy",
            ),
            AnalysisTask(
                name="rich",
                source="int main(int n) { assert(n >= 0); return n; }",
                kind="assertion",
                procedure="main",
                cost_variable="ticks",
                substitutions=(("m", 2), ("n", 8)),
                params=(("depth", 12),),
                suite="toy",
            ),
        ]

    def test_round_trip_preserves_cache_material_and_shard(self):
        import json

        for task in self.tasks():
            body = json.dumps(task_payload(task)).encode("utf-8")
            rebuilt, _ = task_from_request(body, "application/json")
            assert rebuilt.cache_material() == task.cache_material()
            assert rebuilt.name == task.name
            assert rebuilt.suite == task.suite
            options = ChoraOptions()
            assert cache_key(rebuilt, options) == cache_key(task, options)
            for count in (2, 3, 5):
                assert shard_index(rebuilt, count) == shard_index(task, count)


def _ok_record(item):
    return {
        "name": item["name"],
        "suite": item.get("suite"),
        "kind": item["kind"],
        "outcome": "ok",
        "proved": True,
        "bound": None,
        "wall_time": 0.1,
        "cache_hit": False,
        "detail": "",
        "payload": {"proved": True, "served_by": item.get("_host", "?")},
    }


class _FakeResponse:
    def __init__(self, document):
        self.document = document


class _FakeClient:
    """One scripted host: answers, fails, or dies according to ``behaviour``."""

    def __init__(self, url, behaviour, calls):
        self.url = url
        self.behaviour = behaviour
        self.calls = calls

    def batch(self, body, deadline_ms=None, retries_429=0):
        self.calls.append((self.url, [item["name"] for item in body["tasks"]]))
        action = self.behaviour.get(self.url, "ok")
        if action == "unreachable":
            raise ServiceUnreachable(f"{self.url}: connection refused")
        if action == "500":
            raise ServiceHTTPError(500, "internal", "boom")
        if action == "400":
            raise ServiceHTTPError(400, "bad_request", "no thanks")
        if action == "short":
            return _FakeResponse({"results": []})
        results = []
        for item in body["tasks"]:
            record = _ok_record(dict(item, _host=self.url))
            results.append(record)
        return _FakeResponse({"results": results})

    def close(self):
        pass


def _factory(behaviour, calls):
    return lambda url: _FakeClient(url, behaviour, calls)


def _toy_tasks():
    sources = {
        "inc": "int main(int n) { assume(n >= 0); assert(n + 1 >= 1); return n; }",
        "square": "int main(int n) { assume(n >= 2); assert(n * n >= 4); return n; }",
        "open": "int main(int n) { assert(n >= 0); return n; }",
        "sum": "int main(int n) { assume(n >= 0); assert(n + n >= n); return n; }",
    }
    return [
        AnalysisTask(name=name, source=source, kind="assertion", suite="toy")
        for name, source in sources.items()
    ]


HOSTS = ["http://h:1", "http://h:2"]


class TestDistributeBatch:
    def test_results_come_back_in_suite_order(self):
        tasks = _toy_tasks()
        calls = []
        results, reports = distribute_batch(
            tasks, HOSTS, client_factory=_factory({}, calls)
        )
        assert [result.name for result in results] == [task.name for task in tasks]
        assert all(result.outcome == "ok" for result in results)
        assert all(report["ok"] for report in reports)
        # Every task went to the host its shard hash names.
        for report in reports:
            assert report["host"] == HOSTS[report["shard"] - 1]

    def test_partition_matches_the_shard_hash(self):
        tasks = _toy_tasks()
        calls = []
        distribute_batch(tasks, HOSTS, client_factory=_factory({}, calls))
        sent = {}
        for url, names in calls:
            for name in names:
                sent[name] = url
        for task in tasks:
            expected = HOSTS[shard_index(task, len(HOSTS)) - 1]
            assert sent[task.name] == expected

    def test_unreachable_host_fails_over_to_the_survivor(self):
        tasks = _toy_tasks()
        calls = []
        dead = HOSTS[0]
        results, reports = distribute_batch(
            tasks,
            HOSTS,
            client_factory=_factory({dead: "unreachable"}, calls),
            log=lambda message: None,
        )
        assert all(result.outcome == "ok" for result in results)
        for report in reports:
            assert report["ok"]
            assert report["host"] == HOSTS[1]
        # At most one connection attempt hit the dead host per shard; once
        # marked dead it may be skipped entirely by the other shard.
        dead_attempts = [url for url, _ in calls if url == dead]
        assert 1 <= len(dead_attempts) <= 2

    def test_5xx_hosts_are_retried_but_not_marked_dead(self):
        tasks = _toy_tasks()
        calls = []
        flaky = HOSTS[0]
        results, reports = distribute_batch(
            tasks, HOSTS, client_factory=_factory({flaky: "500"}, calls)
        )
        assert all(result.outcome == "ok" for result in results)
        # The flaky host stayed in rotation: no shard skipped it as dead.
        for report in reports:
            assert report["ok"]
            for attempt in report["attempts"]:
                assert "marked dead" not in (attempt["error"] or "")

    def test_4xx_fails_the_shard_without_trying_other_hosts(self):
        tasks = _toy_tasks()
        calls = []
        results, reports = distribute_batch(
            tasks,
            [HOSTS[0]],
            client_factory=_factory({HOSTS[0]: "400"}, calls),
        )
        assert all(result.outcome == "error" for result in results)
        assert all("failed on every host" in result.detail for result in results)
        assert len(calls) == 1

    def test_every_host_down_degrades_to_error_records(self):
        tasks = _toy_tasks()
        calls = []
        behaviour = {url: "unreachable" for url in HOSTS}
        results, reports = distribute_batch(
            tasks, HOSTS, client_factory=_factory(behaviour, calls)
        )
        assert [result.name for result in results] == [task.name for task in tasks]
        assert all(result.outcome == "error" for result in results)
        assert all(not report["ok"] for report in reports)
        assert all(report["host"] is None for report in reports)

    def test_short_result_lists_are_rejected_as_malformed(self):
        tasks = _toy_tasks()
        calls = []
        behaviour = {url: "short" for url in HOSTS}
        results, _ = distribute_batch(
            tasks, HOSTS, client_factory=_factory(behaviour, calls)
        )
        assert all(result.outcome == "error" for result in results)
