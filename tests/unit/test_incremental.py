"""Procedure fingerprints and incremental re-analysis.

Pins the two properties the warm analysis service rests on: fingerprints
cover exactly the dependency cone (editing a procedure changes its own and
its transitive callers' fingerprints, nobody else's), and the incremental
analyzer re-runs exactly the changed cone while producing verdicts
identical to a cold :func:`analyze_program`.
"""

import pytest

from repro.core import (
    ChoraOptions,
    IncrementalAnalyzer,
    analyze_program,
    check_assertions,
)
from repro.lang import parse_program, procedure_fingerprints, fingerprint_cone

#: A three-level call chain plus a procedure off to the side: editing ``mid``
#: must invalidate {mid, main} and nothing else.
CHAIN = """
int side(int n) { assume(n >= 0); return n; }
int leaf(int n) { assume(n >= 0); return n + 1; }
int mid(int n) { assume(n >= 0); return leaf(n) + 1; }
int main(int n) { assume(n >= 0); int r = mid(n); assert(r >= 2); return r; }
"""

CHAIN_EDITED = CHAIN.replace("return leaf(n) + 1;", "return leaf(n) + 2;")

MUTUAL = """
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int main(int n) { assume(n >= 0); return even(n); }
"""


class TestProcedureFingerprints:
    def test_stable_across_parses(self):
        first = procedure_fingerprints(parse_program(CHAIN))
        second = procedure_fingerprints(parse_program(CHAIN))
        assert first == second

    def test_whitespace_and_comments_do_not_matter(self):
        noisy = CHAIN.replace("return n + 1;", "return  n+1 ;  // comment\n")
        assert procedure_fingerprints(parse_program(noisy)) == procedure_fingerprints(
            parse_program(CHAIN)
        )

    def test_edit_changes_exactly_the_caller_cone(self):
        before = procedure_fingerprints(parse_program(CHAIN))
        after = procedure_fingerprints(parse_program(CHAIN_EDITED))
        changed = {name for name in after if after[name] != before.get(name)}
        assert changed == {"mid", "main"}
        changed_set, reusable = fingerprint_cone(before, after)
        assert changed_set == frozenset({"mid", "main"})
        assert reusable == frozenset({"side", "leaf"})

    def test_global_declarations_are_part_of_every_fingerprint(self):
        with_global = "int g = 1;\n" + CHAIN
        plain = procedure_fingerprints(parse_program(CHAIN))
        augmented = procedure_fingerprints(parse_program(with_global))
        assert all(augmented[name] != plain[name] for name in plain)

    def test_mutual_recursion_shares_component_material(self):
        prints = procedure_fingerprints(parse_program(MUTUAL))
        edited = procedure_fingerprints(
            parse_program(MUTUAL.replace("return odd(n - 1);", "return odd(n - 2);"))
        )
        # Editing one member of the SCC invalidates both members + callers.
        assert edited["even"] != prints["even"]
        assert edited["odd"] != prints["odd"]
        assert edited["main"] != prints["main"]

    def test_distinct_procedures_have_distinct_fingerprints(self):
        prints = procedure_fingerprints(parse_program(CHAIN))
        assert len(set(prints.values())) == len(prints)


class TestIncrementalAnalyzer:
    def test_repeated_program_is_fully_spliced(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        assert set(analyzer.last_report.analyzed) == {"side", "leaf", "mid", "main"}
        analyzer.analyze(parse_program(CHAIN))
        assert analyzer.last_report.analyzed == ()
        assert set(analyzer.last_report.reused) == {"side", "leaf", "mid", "main"}

    def test_edit_reruns_only_the_dependency_cone(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        analyzer.analyze(parse_program(CHAIN_EDITED))
        assert set(analyzer.last_report.analyzed) == {"mid", "main"}
        assert set(analyzer.last_report.reused) == {"side", "leaf"}

    def test_incremental_verdicts_match_cold_analysis(self):
        options = ChoraOptions()
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN), options)
        warm = analyzer.analyze(parse_program(CHAIN_EDITED), options)
        cold = analyze_program(parse_program(CHAIN_EDITED), options)
        warm_outcomes = [
            (o.site.procedure, o.site.text, o.proved)
            for o in check_assertions(warm, options.abstraction)
        ]
        cold_outcomes = [
            (o.site.procedure, o.site.text, o.proved)
            for o in check_assertions(cold, options.abstraction)
        ]
        assert warm_outcomes == cold_outcomes

    def test_summaries_cover_every_procedure_when_spliced(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        result = analyzer.analyze(parse_program(CHAIN))
        assert set(result.summaries) == {"side", "leaf", "mid", "main"}

    def test_options_are_part_of_the_store_key(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN), ChoraOptions())
        analyzer.analyze(parse_program(CHAIN), ChoraOptions(use_two_region=False))
        # Different options must not splice the other configuration's work.
        assert analyzer.last_report.reused == ()

    def test_store_capacity_is_bounded(self):
        analyzer = IncrementalAnalyzer(capacity=2)
        for offset in range(4):
            source = CHAIN.replace("return n + 1;", f"return n + {offset + 1};")
            analyzer.analyze(parse_program(source))
        assert analyzer.stats()["components"] <= 2


class TestKeepWarm:
    def test_keep_warm_suppresses_clearing(self):
        from repro.polyhedra.cache import clear_caches, keep_warm, register_cache

        table = register_cache("test-warmth")
        table.lookup("key", lambda: 42)
        with keep_warm():
            clear_caches()
            assert table.contains("key")
            clear_caches(force=True)
            assert not table.contains("key")
        table.lookup("key", lambda: 42)
        clear_caches()
        assert not table.contains("key")
