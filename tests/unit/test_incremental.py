"""Procedure fingerprints and incremental re-analysis.

Pins the two properties the warm analysis service rests on: fingerprints
cover exactly the dependency cone (editing a procedure changes its own and
its transitive callers' fingerprints, nobody else's), and the incremental
analyzer re-runs exactly the changed cone while producing verdicts
identical to a cold :func:`analyze_program`.
"""

import pickle


from repro.core import (
    ChoraOptions,
    IncrementalAnalyzer,
    analyze_program,
    check_assertions,
)
from repro.core.incremental import STORE_NAME, STORE_SCHEMA, store_stats
from repro.engine.storage import MemoryStorage
from repro.lang import parse_program, procedure_fingerprints, fingerprint_cone

#: A three-level call chain plus a procedure off to the side: editing ``mid``
#: must invalidate {mid, main} and nothing else.
CHAIN = """
int side(int n) { assume(n >= 0); return n; }
int leaf(int n) { assume(n >= 0); return n + 1; }
int mid(int n) { assume(n >= 0); return leaf(n) + 1; }
int main(int n) { assume(n >= 0); int r = mid(n); assert(r >= 2); return r; }
"""

CHAIN_EDITED = CHAIN.replace("return leaf(n) + 1;", "return leaf(n) + 2;")

MUTUAL = """
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int main(int n) { assume(n >= 0); return even(n); }
"""


class TestProcedureFingerprints:
    def test_stable_across_parses(self):
        first = procedure_fingerprints(parse_program(CHAIN))
        second = procedure_fingerprints(parse_program(CHAIN))
        assert first == second

    def test_whitespace_and_comments_do_not_matter(self):
        noisy = CHAIN.replace("return n + 1;", "return  n+1 ;  // comment\n")
        assert procedure_fingerprints(parse_program(noisy)) == procedure_fingerprints(
            parse_program(CHAIN)
        )

    def test_edit_changes_exactly_the_caller_cone(self):
        before = procedure_fingerprints(parse_program(CHAIN))
        after = procedure_fingerprints(parse_program(CHAIN_EDITED))
        changed = {name for name in after if after[name] != before.get(name)}
        assert changed == {"mid", "main"}
        changed_set, reusable = fingerprint_cone(before, after)
        assert changed_set == frozenset({"mid", "main"})
        assert reusable == frozenset({"side", "leaf"})

    def test_global_declarations_are_part_of_every_fingerprint(self):
        with_global = "int g = 1;\n" + CHAIN
        plain = procedure_fingerprints(parse_program(CHAIN))
        augmented = procedure_fingerprints(parse_program(with_global))
        assert all(augmented[name] != plain[name] for name in plain)

    def test_mutual_recursion_shares_component_material(self):
        prints = procedure_fingerprints(parse_program(MUTUAL))
        edited = procedure_fingerprints(
            parse_program(MUTUAL.replace("return odd(n - 1);", "return odd(n - 2);"))
        )
        # Editing one member of the SCC invalidates both members + callers.
        assert edited["even"] != prints["even"]
        assert edited["odd"] != prints["odd"]
        assert edited["main"] != prints["main"]

    def test_distinct_procedures_have_distinct_fingerprints(self):
        prints = procedure_fingerprints(parse_program(CHAIN))
        assert len(set(prints.values())) == len(prints)


class TestIncrementalAnalyzer:
    def test_repeated_program_is_fully_spliced(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        assert set(analyzer.last_report.analyzed) == {"side", "leaf", "mid", "main"}
        analyzer.analyze(parse_program(CHAIN))
        assert analyzer.last_report.analyzed == ()
        assert set(analyzer.last_report.reused) == {"side", "leaf", "mid", "main"}

    def test_edit_reruns_only_the_dependency_cone(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        analyzer.analyze(parse_program(CHAIN_EDITED))
        assert set(analyzer.last_report.analyzed) == {"mid", "main"}
        assert set(analyzer.last_report.reused) == {"side", "leaf"}

    def test_incremental_verdicts_match_cold_analysis(self):
        options = ChoraOptions()
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN), options)
        warm = analyzer.analyze(parse_program(CHAIN_EDITED), options)
        cold = analyze_program(parse_program(CHAIN_EDITED), options)
        warm_outcomes = [
            (o.site.procedure, o.site.text, o.proved)
            for o in check_assertions(warm, options.abstraction)
        ]
        cold_outcomes = [
            (o.site.procedure, o.site.text, o.proved)
            for o in check_assertions(cold, options.abstraction)
        ]
        assert warm_outcomes == cold_outcomes

    def test_summaries_cover_every_procedure_when_spliced(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN))
        result = analyzer.analyze(parse_program(CHAIN))
        assert set(result.summaries) == {"side", "leaf", "mid", "main"}

    def test_options_are_part_of_the_store_key(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(CHAIN), ChoraOptions())
        analyzer.analyze(parse_program(CHAIN), ChoraOptions(use_two_region=False))
        # Different options must not splice the other configuration's work.
        assert analyzer.last_report.reused == ()

    def test_store_capacity_is_bounded(self):
        analyzer = IncrementalAnalyzer(capacity=2)
        for offset in range(4):
            source = CHAIN.replace("return n + 1;", f"return n + {offset + 1};")
            analyzer.analyze(parse_program(source))
        assert analyzer.stats()["components"] <= 2


#: A recursive program, so persisted summaries carry closed-form bounds
#: (sympy expression trees) through the restricted unpickler.
RECURSIVE = """
int work(int n) { if (n <= 0) { return 0; } return work(n - 1) + 1; }
int main(int n) { assume(n >= 0); int r = work(n); assert(r >= 0); return r; }
"""


class TestPersistentStore:
    def _populated(self, source=CHAIN):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(source))
        return analyzer

    def test_save_load_round_trip_splices_everything(self):
        storage = MemoryStorage()
        saved = self._populated().save_store(storage, "fp")
        assert saved == 4  # one component per procedure of CHAIN
        restored = IncrementalAnalyzer()
        assert restored.load_store(storage, "fp") == 4
        restored.analyze(parse_program(CHAIN))
        assert restored.last_report.analyzed == ()
        assert set(restored.last_report.reused) == {"side", "leaf", "mid", "main"}

    def test_restored_recursive_summaries_match_cold_verdicts(self):
        options = ChoraOptions()
        storage = MemoryStorage()
        self._populated(RECURSIVE).save_store(storage, "fp")
        restored = IncrementalAnalyzer()
        assert restored.load_store(storage, "fp") > 0
        warm = restored.analyze(parse_program(RECURSIVE), options)
        assert restored.last_report.analyzed == ()
        cold = analyze_program(parse_program(RECURSIVE), options)
        warm_outcomes = [
            (o.site.procedure, o.proved)
            for o in check_assertions(warm, options.abstraction)
        ]
        cold_outcomes = [
            (o.site.procedure, o.proved)
            for o in check_assertions(cold, options.abstraction)
        ]
        assert warm_outcomes == cold_outcomes

    def test_different_fingerprint_reads_as_cold_start(self):
        storage = MemoryStorage()
        self._populated().save_store(storage, "fp")
        assert IncrementalAnalyzer().load_store(storage, "other-code") == 0
        assert store_stats(storage, "other-code")["components"] == 0

    def test_corrupt_store_reads_as_cold_start(self):
        storage = MemoryStorage()
        storage.write(STORE_NAME, b"\x80\x05 definitely not a store")
        assert IncrementalAnalyzer().load_store(storage, "fp") == 0

    def test_malformed_but_well_pickled_fields_degrade_not_raise(self):
        """Regression: a blob that unpickles under the restricted
        vocabulary but carries broken field shapes must degrade to a
        (partial) cold start — a raise here would crash every worker of a
        restarted service before its ready handshake."""
        good = self._populated(RECURSIVE)
        good_components = [
            (key, (record.summaries, record.height_analyses))
            for key, record in good._store.items()
        ]
        storage = MemoryStorage()
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": "fp",
            "fresh_counter": "not-a-number",
            "components": [
                "not-a-pair",
                (["unhashable", "key"], ({}, {})),
                (("k1",), "not-a-record-tuple"),
                (("k2",), ({}, {}, "three-elements")),
                (("k3",), (5, {})),
            ]
            + good_components,
        }
        storage.write(STORE_NAME, pickle.dumps(payload))
        restored = IncrementalAnalyzer()
        # Every malformed entry is dropped; the well-formed ones load.
        assert restored.load_store(storage, "fp") == len(good_components)
        assert store_stats(storage, "fp")["components"] == len(good_components)
        # And save_store over the damaged blob must not raise either.
        assert self._populated(CHAIN).save_store(storage, "fp") > 0

    def test_disallowed_class_is_rejected_not_executed(self, tmp_path):
        sentinel = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                import os

                return (os.system, (f"touch {sentinel}",))

        storage = MemoryStorage()
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": "fp",
            "fresh_counter": 0,
            "components": [(("k",), ({"p": Evil()}, {}))],
        }
        storage.write(STORE_NAME, pickle.dumps(payload))
        assert IncrementalAnalyzer().load_store(storage, "fp") == 0
        assert not sentinel.exists()

    def test_sympy_eval_callables_cannot_be_abused(self, tmp_path):
        """The sympy vocabulary is enumerated per class precisely because a
        module-prefix allowlist lets a REDUCE op call eval-style callables:
        ``sympy.sympify`` evaluates its string argument, and so does
        ``sympy.log``'s constructor (hence its guarded stand-in)."""
        sentinel = tmp_path / "pwned"
        command = f"__import__('os').system('touch {sentinel}')"
        attacks = [
            # GLOBAL sympy.core.sympify sympify; REDUCE with an evil string.
            b"csympy.core.sympify\nsympify\n(S'" + command.encode() + b"'\ntR.",
            # GLOBAL log (an *allowed* name, via its guarded stand-in);
            # REDUCE with a string argument must be refused, not sympified.
            b"csympy.functions.elementary.exponential\nlog\n(S'"
            + command.encode()
            + b"'\ntR.",
        ]
        for blob in attacks:
            storage = MemoryStorage()
            storage.write(STORE_NAME, blob)
            assert IncrementalAnalyzer().load_store(storage, "fp") == 0
            assert not sentinel.exists()

    def test_log_bearing_summaries_round_trip_through_the_guard(self):
        """A program whose closed-form bounds embed ``log`` (mergesort-style
        halving recursion) must still persist and restore — the guarded
        ``log`` stand-in accepts legitimate sympy arguments."""
        from repro.benchlib.suites import get_suite

        source = get_suite("table1").entry("mergesort").source
        analyzer = IncrementalAnalyzer()
        analyzer.analyze(parse_program(source))
        storage = MemoryStorage()
        saved = analyzer.save_store(storage, "fp")
        assert saved > 0
        blob = storage.read(STORE_NAME)
        assert blob is not None and b"log" in blob  # the guard is exercised
        restored = IncrementalAnalyzer()
        assert restored.load_store(storage, "fp") == saved
        restored.analyze(parse_program(source))
        assert restored.last_report.analyzed == ()

    def test_save_merges_the_existing_store(self):
        storage = MemoryStorage()
        self._populated(CHAIN).save_store(storage, "fp")
        self._populated(RECURSIVE).save_store(storage, "fp")
        restored = IncrementalAnalyzer()
        loaded = restored.load_store(storage, "fp")
        restored.analyze(parse_program(CHAIN))
        assert restored.last_report.analyzed == ()
        restored.analyze(parse_program(RECURSIVE))
        assert restored.last_report.analyzed == ()
        assert loaded == restored.stats()["components"]

    def test_persisted_store_is_bounded_by_capacity(self):
        """Regression: merge-on-save used to keep every component ever
        seen, growing the blob (and every start-up's deserialization)
        without bound on a long-lived shared cache directory."""
        storage = MemoryStorage()
        for offset in range(4):
            source = CHAIN.replace("return n + 1;", f"return n + {offset + 1};")
            analyzer = IncrementalAnalyzer(capacity=3)
            analyzer.analyze(parse_program(source))
            analyzer.save_store(storage, "fp")
        assert store_stats(storage, "fp")["components"] == 3
        # The newest contributions survive the trim: the last-saved
        # program still splices its three persisted components (the
        # fourth was evicted by the in-memory FIFO before the save).
        restored = IncrementalAnalyzer()
        assert restored.load_store(storage, "fp") == 3
        restored.analyze(
            parse_program(CHAIN.replace("return n + 1;", "return n + 4;"))
        )
        assert len(restored.last_report.reused) == 3
        assert len(restored.last_report.analyzed) == 1

    def test_load_respects_capacity_without_evicting(self):
        storage = MemoryStorage()
        self._populated().save_store(storage, "fp")
        small = IncrementalAnalyzer(capacity=2)
        assert small.load_store(storage, "fp") == 2
        assert small.stats()["components"] == 2

    def test_empty_analyzer_does_not_clobber_a_useful_store(self):
        storage = MemoryStorage()
        self._populated().save_store(storage, "fp")
        before = storage.read(STORE_NAME)
        assert IncrementalAnalyzer().save_store(storage, "fp") == 0
        assert storage.read(STORE_NAME) == before

    def test_load_advances_the_fresh_symbol_counter(self):
        from repro.formulas.symbols import fresh_counter

        storage = MemoryStorage()
        self._populated(RECURSIVE).save_store(storage, "fp")
        payload = pickle.loads(storage.read(STORE_NAME))
        assert payload["fresh_counter"] > 0
        IncrementalAnalyzer().load_store(storage, "fp")
        # New fresh symbols can never collide with restored summaries'.
        assert fresh_counter() >= payload["fresh_counter"]

    def test_store_stats_shape(self):
        storage = MemoryStorage()
        assert store_stats(storage, "fp") == {
            "present": False,
            "bytes": 0,
            "components": 0,
            "procedures": 0,
        }
        self._populated().save_store(storage, "fp")
        stats = store_stats(storage, "fp")
        assert stats["present"] and stats["bytes"] > 0
        assert stats["components"] == 4 and stats["procedures"] == 4


class TestKeepWarm:
    def test_keep_warm_suppresses_clearing(self):
        from repro.polyhedra.cache import clear_caches, keep_warm, register_cache

        table = register_cache("test-warmth")
        table.lookup("key", lambda: 42)
        with keep_warm():
            clear_caches()
            assert table.contains("key")
            clear_caches(force=True)
            assert not table.contains("key")
        table.lookup("key", lambda: 42)
        clear_caches()
        assert not table.contains("key")
