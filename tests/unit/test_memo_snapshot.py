"""Tests for the persistable polyhedral memo snapshot and storage namespaces.

The projection/LP memo tables (:mod:`repro.polyhedra.cache`) can be saved
into — and absorbed back from — a :class:`~repro.engine.storage.CacheStorage`
namespace.  These tests pin the contract: round-trips preserve entries and
results, snapshots written by different code fingerprints are ignored,
merging is additive, and the namespace is disjoint from the result cache's
own entries.
"""

from fractions import Fraction

import pytest

from repro.engine.storage import DirectoryStorage, MemoryStorage, PrefixStorage
from repro.formulas import sym
from repro.polyhedra import LinearConstraint, eliminate
from repro.polyhedra import cache as memo

X, Y, Z = sym("x"), sym("y"), sym("z")


@pytest.fixture(autouse=True)
def _cold_tables():
    memo.clear_caches(force=True)
    yield
    memo.clear_caches(force=True)


def _chain_system():
    return [
        LinearConstraint.make({X: 1, Y: -1}),            # x <= y
        LinearConstraint.make({Y: 1, Z: -1}),            # y <= z
        LinearConstraint.make({Z: 1}, Fraction(-9)),     # z <= 9
        LinearConstraint.make({X: -1}),                  # 0 <= x
    ]


class TestSnapshotRoundTrip:
    def test_save_load_preserves_projection_results(self):
        storage = MemoryStorage()
        system = _chain_system()
        cold = eliminate(system, [Y])
        table = memo.register_cache("fm.eliminate")
        assert len(table) > 0
        saved = memo.save_snapshot(storage, fingerprint="fp")
        assert saved >= len(table)

        memo.clear_caches(force=True)
        assert len(table) == 0
        loaded = memo.load_snapshot(storage, fingerprint="fp")
        assert loaded == saved
        hits_before = table.hits
        assert eliminate(system, [Y]) == cold
        assert table.hits == hits_before + 1  # served from the snapshot

    def test_fingerprint_mismatch_is_a_cold_start(self):
        storage = MemoryStorage()
        eliminate(_chain_system(), [Y])
        assert memo.save_snapshot(storage, fingerprint="old-code") > 0
        memo.clear_caches(force=True)
        assert memo.load_snapshot(storage, fingerprint="new-code") == 0

    def test_corrupt_snapshot_is_a_cold_start(self):
        storage = MemoryStorage()
        storage.write(memo.SNAPSHOT_NAME, b"not a pickle")
        assert memo.load_snapshot(storage, fingerprint="fp") == 0

    def test_malicious_snapshot_cannot_execute_code(self, tmp_path):
        """Cache directories are shareable; a planted pickle must not run."""
        import pickle

        class Exploit:
            def __reduce__(self):
                import os

                return (os.system, (f"touch {tmp_path}/pwned",))

        storage = MemoryStorage()
        payload = {
            "schema": memo.SNAPSHOT_SCHEMA,
            "fingerprint": "fp",
            "tables": {"fm.eliminate": [(("k",), Exploit())]},
        }
        storage.write(memo.SNAPSHOT_NAME, pickle.dumps(payload))
        assert memo.load_snapshot(storage, fingerprint="fp") == 0
        assert not (tmp_path / "pwned").exists()

    def test_only_persistent_tables_are_snapshotted(self):
        storage = MemoryStorage()
        eliminate(_chain_system(), [Y])  # populates persistent fm/lp tables
        ephemeral = memo.register_cache("test.ephemeral")
        ephemeral.lookup("key", lambda: "value")
        memo.save_snapshot(storage, fingerprint="fp")
        stats = memo.snapshot_stats(storage, fingerprint="fp")
        assert "test.ephemeral" not in stats["tables"]
        assert "fm.eliminate" in stats["tables"]

    def test_save_merges_with_existing_snapshot(self):
        storage = MemoryStorage()
        eliminate(_chain_system(), [Y])
        first = memo.save_snapshot(storage, fingerprint="fp")
        memo.clear_caches(force=True)
        eliminate(_chain_system(), [Z])  # a different projection
        second = memo.save_snapshot(storage, fingerprint="fp")
        assert second > first  # old entries survived the second save
        memo.clear_caches(force=True)
        assert memo.load_snapshot(storage, fingerprint="fp") == second

    def test_snapshot_stats_reports_tables(self):
        storage = MemoryStorage()
        eliminate(_chain_system(), [Y])
        memo.save_snapshot(storage, fingerprint="fp")
        stats = memo.snapshot_stats(storage, fingerprint="fp")
        assert stats["present"] is True
        assert stats["bytes"] > 0
        assert stats["entries"] >= 1
        assert "fm.eliminate" in stats["tables"]
        absent = memo.snapshot_stats(MemoryStorage(), fingerprint="fp")
        assert absent == {"present": False, "bytes": 0, "entries": 0, "tables": {}}

    def test_directory_storage_round_trip(self, tmp_path):
        storage = DirectoryStorage(tmp_path)
        eliminate(_chain_system(), [Y])
        saved = memo.save_snapshot(storage, fingerprint="fp")
        memo.clear_caches(force=True)
        assert memo.load_snapshot(storage, fingerprint="fp") == saved


class TestAbsorb:
    def test_local_entries_win_and_capacity_holds(self):
        table = memo.MemoCache("t", capacity=3)
        table.lookup("a", lambda: 1)
        added = table.absorb([("a", 99), ("b", 2), ("c", 3), ("d", 4)])
        # "a" already present (local value wins), "b"/"c" fit, "d" is past
        # the capacity and must not evict anything this process computed.
        assert added == 2
        assert table.lookup("a", lambda: -1) == 1
        assert len(table) == 3
        assert not table.contains("d")
        # absorb never touches the hit/miss counters (one miss + one hit
        # from the lookups above).
        assert table.misses == 1
        assert table.hits == 1


class TestStorageNamespaces:
    def test_memory_namespace_is_disjoint(self):
        storage = MemoryStorage()
        ns = storage.namespace("memo")
        storage.write("result", b"r")
        ns.write("snapshot", b"s")
        assert list(storage.names()) == ["result"]
        assert list(ns.names()) == ["snapshot"]
        assert ns.read("snapshot") == b"s"
        assert storage.read("snapshot") is None
        assert ns.size_of("snapshot") == 1
        assert ns.delete("snapshot") is True
        assert list(ns.names()) == []

    def test_directory_namespace_is_a_subdirectory(self, tmp_path):
        storage = DirectoryStorage(tmp_path)
        ns = storage.namespace("memo")
        storage.write("result", b"r")
        ns.write("snapshot", b"s")
        assert isinstance(ns, DirectoryStorage)
        assert list(storage.names()) == ["result"]
        assert list(ns.names()) == ["snapshot"]
        assert (tmp_path / "memo" / "snapshot.json").exists()

    def test_prefix_storage_location_names_the_namespace(self):
        ns = PrefixStorage(MemoryStorage(), "memo")
        assert "memo" in ns.location()
