"""Tests for the differential fuzzing subsystem (:mod:`repro.fuzz`)."""

import random


from repro.engine import AnalysisTask
from repro.engine.tasks import execute_task
from repro.core import ChoraOptions
from repro.fuzz import (
    GeneratorConfig,
    OracleConfig,
    check_program,
    format_program,
    generate_program,
    program_seed,
)
from repro.fuzz.shrink import shrink_program
from repro.lang import parse_program
from repro.lang.interp import (
    AssertionFailure,
    AssumeBlocked,
    ExecutionLimitExceeded,
    Interpreter,
)

SMOKE_SEEDS = [program_seed(0, index) for index in range(30)]


class TestGenerator:
    def test_deterministic_for_a_seed(self):
        for seed in SMOKE_SEEDS[:10]:
            first = format_program(generate_program(seed))
            second = format_program(generate_program(seed))
            assert first == second

    def test_different_seeds_differ(self):
        sources = {format_program(generate_program(seed)) for seed in SMOKE_SEEDS}
        # Collisions are astronomically unlikely; equality would mean the
        # seed is ignored.
        assert len(sources) > len(SMOKE_SEEDS) // 2

    def test_program_seed_spreads_campaigns(self):
        a = [program_seed(0, index) for index in range(50)]
        b = [program_seed(1, index) for index in range(50)]
        assert len(set(a) | set(b)) == 100

    def test_round_trips_through_parser(self):
        for seed in SMOKE_SEEDS:
            source = format_program(generate_program(seed))
            reparsed = parse_program(source)
            assert format_program(reparsed) == source

    def test_entry_is_last_procedure_named_main(self):
        for seed in SMOKE_SEEDS:
            program = generate_program(seed)
            assert program.procedures[-1].name == "main"

    def test_cost_counter_declared(self):
        for seed in SMOKE_SEEDS:
            program = generate_program(seed)
            assert "cost" in program.global_names

    def test_every_program_interpretable(self):
        # Well-formed by construction: runs may block, fail a data-dependent
        # assertion or exhaust the budget, but never hit a malformed-program
        # error (undefined variable, arity mismatch, division by zero).
        for seed in SMOKE_SEEDS:
            program = parse_program(format_program(generate_program(seed)))
            arity = len(program.procedures[-1].scalar_parameters)
            for run in range(2):
                interpreter = Interpreter(
                    program, rng=random.Random(run), max_steps=50_000, max_depth=64
                )
                try:
                    interpreter.run("main", [2] * arity)
                except (AssumeBlocked, ExecutionLimitExceeded, AssertionFailure):
                    pass

    def test_size_bounds_procedure_count(self):
        for seed in SMOKE_SEEDS[:10]:
            program = generate_program(seed, GeneratorConfig(size=1))
            assert len(program.procedures) <= 2


class TestOracle:
    def test_clean_program_yields_no_findings(self):
        source = (
            "int cost = 0;\n"
            "int main(int n) {\n"
            "    cost = cost + 1;\n"
            "    if (n <= 0) { return 0; }\n"
            "    int r = main(n - 1);\n"
            "    return r + 1;\n"
            "}\n"
        )
        report = check_program(source, OracleConfig(runs=5, baselines=False))
        assert report.violations == []
        assert report.runs_completed == 5
        # CHORA bounds this shape: the claims table is non-empty.
        assert any(key.startswith("chora:") for key in report.claims)

    def test_blocked_runs_are_discarded_not_flagged(self):
        source = "int main(int n) { assume(n > 100); return n; }"
        report = check_program(source, OracleConfig(runs=4, baselines=False))
        assert report.runs_discarded == 4
        assert report.violations == []

    def test_failing_unproved_assertion_is_not_a_finding(self):
        # The assertion is data-dependent and false for n > 0; no sound tool
        # proves it, so concrete failures are expected behaviour.
        source = "int main(int n) { assert(n <= 0); return n; }"
        report = check_program(source, OracleConfig(runs=6, baselines=False))
        assert report.violations == []
        assert report.runs_completed == 6

    def test_unsound_bound_claim_is_flagged(self):
        # Forge an unsound claim through the internal claim type: observed
        # cost 5 against a claimed bound of n (= 3) must trip the comparison.
        from repro.fuzz.oracle import _BoundClaim
        import sympy

        claim = _BoundClaim("chora", "cost", sympy.Symbol("n", positive=True))
        assert claim.evaluated_at({"n": 3}) == 3.0
        assert claim.evaluated_at({"m": 3}) is None  # residual symbol: skip
        # Outside the positive regime the closed form makes no claim.
        assert claim.evaluated_at({"n": 0}) is None
        # Non-real values (zoo/nan from vanishing denominators) are skipped.
        n = sympy.Symbol("n", positive=True)
        assert _BoundClaim("chora", "cost", 1 / (n - 2)).evaluated_at({"n": 2}) is None
        assert _BoundClaim("chora", "cost", sympy.sqrt(n - 5)).evaluated_at({"n": 1}) is None

    def test_assert_unsound_detection_end_to_end(self, monkeypatch):
        # Forge a tool that "proves" the data-dependent assertion: the
        # concrete failure must then be reported as an unsound verdict.
        import repro.fuzz.oracle as oracle_module

        source = "int main(int n) { assert(n <= 2); return n; }"
        monkeypatch.setattr(
            oracle_module,
            "_proved_assertion_texts",
            lambda outcomes: {"n <= 2"},
        )
        report = check_program(source, OracleConfig(runs=10, baselines=False))
        kinds = {finding.kind for finding in report.findings}
        assert "assert-unsound" in kinds

    def test_analyzer_crash_is_a_finding(self, monkeypatch):
        import repro.fuzz.oracle as oracle_module

        def explode(program, options):
            raise RuntimeError("synthetic analyzer crash")

        monkeypatch.setattr(oracle_module, "analyze_program", explode)
        report = check_program("int main() { return 0; }", OracleConfig(runs=1))
        assert [finding.kind for finding in report.findings] == ["analyzer-error"]

    def test_batch_kind_registered(self):
        task = AnalysisTask(
            name="t",
            source="int cost = 0; int main(int n) { cost = cost + 1; return 0; }",
            kind="fuzz",
            params=(("runs", 3), ("seed", 7), ("baselines", False)),
        )
        payload = execute_task(task, ChoraOptions())
        assert payload["proved"] is True
        assert payload["runs_completed"] + payload["runs_discarded"] == 3

    def test_oracle_deterministic(self):
        source = format_program(generate_program(SMOKE_SEEDS[4]))
        config = OracleConfig(runs=4, seed=11, baselines=False)
        first = check_program(source, config).to_dict()
        second = check_program(source, config).to_dict()
        assert first == second


class TestShrinker:
    def test_deletes_irrelevant_statements(self):
        source = (
            "int cost = 0;\n"
            "int main(int n) {\n"
            "    int a = 1;\n"
            "    int b = 2;\n"
            "    int c = a + b;\n"
            "    assert(0 == 1);\n"
            "    return c;\n"
            "}\n"
        )

        def reproduces(candidate: str) -> bool:
            return "assert(0 == 1);" in candidate

        minimized = shrink_program(source, reproduces)
        assert "assert(0 == 1);" in minimized
        assert "int a" not in minimized
        assert "int b" not in minimized

    def test_drops_unreferenced_procedures(self):
        source = (
            "int helper(int n) { return n + 1; }\n"
            "int main(int n) { assert(0 == 1); return n; }\n"
        )
        minimized = shrink_program(source, lambda c: "assert(0 == 1);" in c)
        assert "helper" not in minimized

    def test_shrinks_constants(self):
        source = "int main(int n) { int x = 100; assert(0 == 1); return x; }"
        minimized = shrink_program(source, lambda c: "assert(0 == 1);" in c)
        assert "100" not in minimized

    def test_never_touches_divisors(self):
        source = "int main(int n) { int x = n / 2; assert(0 == 1); return x; }"
        minimized = shrink_program(
            source, lambda c: "assert(0 == 1);" in c and "/" in c
        )
        assert "/ 2" in minimized

    def test_result_reparses(self):
        source = format_program(generate_program(SMOKE_SEEDS[0]))
        minimized = shrink_program(source, lambda c: "main" in c)
        parse_program(minimized)

    def test_keeps_input_when_nothing_reproduces_smaller(self):
        source = "int main(int n) {\n    return n;\n}\n"
        minimized = shrink_program(source, lambda c: c == source)
        assert minimized == source
