"""Unit tests for the mini-language tokenizer and parser."""

import pytest

from repro.lang import ParseError, parse_program, parse_procedure_body, tokenize
from repro.lang import ast


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 3;")
        texts = [t.text for t in tokens]
        assert texts == ["int", "x", "=", "3", ";", ""]

    def test_comments_are_dropped(self):
        tokens = tokenize("x = 1; // comment\n/* block\ncomment */ y = 2;")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert "comment" not in texts
        assert "y" in texts

    def test_line_numbers(self):
        tokens = tokenize("x = 1;\ny = 2;")
        y_token = next(t for t in tokens if t.text == "y")
        assert y_token.line == 2

    def test_two_char_operators(self):
        tokens = tokenize("x <= y && z != w || a >= b")
        texts = {t.text for t in tokens}
        assert {"<=", "&&", "!=", "||", ">="} <= texts

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x = $;")


class TestProgramStructure:
    def test_globals_and_procedure(self):
        program = parse_program(
            """
            int g;
            int counter = 5;
            void p(int n) { g = g + n; }
            """
        )
        assert program.global_names == ("g", "counter")
        assert program.globals[1].init == 5
        assert program.procedure_names == ("p",)
        assert not program.procedure("p").returns_value

    def test_parameters(self):
        program = parse_program("int f(int a, int *b, int c) { return a + c; }")
        procedure = program.procedure("f")
        assert procedure.scalar_parameters == ("a", "c")
        assert procedure.parameters[1].is_array

    def test_missing_procedure_raises(self):
        program = parse_program("int f() { return 1; }")
        with pytest.raises(KeyError):
            program.procedure("g")

    def test_local_variables_collected(self):
        program = parse_program(
            "int f(int n) { int a = 1; if (n > 0) { int b = 2; } return a; }"
        )
        assert set(program.procedure("f").local_variables()) == {"a", "b"}


class TestStatements:
    def parse_body(self, text):
        return parse_procedure_body(text)

    def test_if_else(self):
        block = self.parse_body("{ if (x > 0) { y = 1; } else { y = 2; } }")
        statement = block.statements[0]
        assert isinstance(statement, ast.If)
        assert statement.else_branch is not None

    def test_if_without_braces(self):
        block = self.parse_body("{ if (x > 0) y = 1; else y = 2; }")
        statement = block.statements[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.then_branch, ast.Block)

    def test_while(self):
        block = self.parse_body("{ while (i < n) { i = i + 1; } }")
        assert isinstance(block.statements[0], ast.While)

    def test_for_desugars_to_while(self):
        block = self.parse_body("{ for (int i = 0; i < 18; i++) { p(n - 1); } }")
        outer = block.statements[0]
        assert isinstance(outer, ast.Block)
        declaration, loop = outer.statements
        assert isinstance(declaration, ast.VarDecl)
        assert isinstance(loop, ast.While)
        # The loop body ends with the update statement i = i + 1.
        update = loop.body.statements[-1]
        assert isinstance(update, ast.Assign)

    def test_do_while_runs_body_first(self):
        block = self.parse_body("{ do { x = x + 1; } while (x < 3); }")
        outer = block.statements[0]
        assert isinstance(outer, ast.Block)
        first, loop = outer.statements
        assert isinstance(first, ast.Block)
        assert isinstance(loop, ast.While)

    def test_increment_sugar(self):
        block = self.parse_body("{ nTicks++; x -= 3; }")
        increment, decrement = block.statements
        assert isinstance(increment, ast.Assign)
        assert isinstance(increment.value, ast.BinOp)
        assert isinstance(decrement.value, ast.BinOp)

    def test_assert_assume_return(self):
        block = self.parse_body("{ assume(n >= 0); assert(x == 1); return n + 1; }")
        assume, assertion, ret = block.statements
        assert isinstance(assume, ast.Assume)
        assert isinstance(assertion, ast.Assert)
        assert isinstance(ret, ast.Return)

    def test_havoc_from_bare_nondet(self):
        block = self.parse_body("{ x = nondet(); y = nondet(0, n); }")
        havoc, bounded = block.statements
        assert isinstance(havoc, ast.Havoc)
        assert isinstance(bounded, ast.Assign)
        assert isinstance(bounded.value, ast.Nondet)

    def test_array_write_is_statement(self):
        block = self.parse_body("{ A[i] = x + 1; }")
        assert isinstance(block.statements[0], ast.ArrayWrite)

    def test_call_statement(self):
        block = self.parse_body("{ applyHanoi(n - 1, from, via, to); }")
        statement = block.statements[0]
        assert isinstance(statement, ast.CallStmt)
        assert statement.call.callee == "applyHanoi"
        assert len(statement.call.args) == 4


class TestExpressions:
    def parse_single_assign(self, text):
        block = parse_procedure_body("{ " + text + " }")
        return block.statements[0]

    def test_precedence(self):
        statement = self.parse_single_assign("x = 1 + 2 * 3;")
        value = statement.value
        assert isinstance(value, ast.BinOp) and value.op == "+"
        assert isinstance(value.right, ast.BinOp) and value.right.op == "*"

    def test_parentheses(self):
        statement = self.parse_single_assign("x = (1 + 2) * 3;")
        value = statement.value
        assert value.op == "*"

    def test_unary_minus(self):
        statement = self.parse_single_assign("x = -y + 1;")
        assert isinstance(statement.value.left, ast.UnaryNeg)

    def test_division(self):
        statement = self.parse_single_assign("x = n / 2;")
        assert statement.value.op == "/"

    def test_call_in_expression(self):
        statement = self.parse_single_assign("x = 2 * hanoi(n - 1) + 1;")
        assert isinstance(statement.value, ast.BinOp)

    def test_nested_calls(self):
        statement = self.parse_single_assign("x = ackermann(m - 1, ackermann(m, n - 1));")
        call = statement.value
        assert isinstance(call, ast.CallExpr)
        assert isinstance(call.args[1], ast.CallExpr)

    def test_array_read(self):
        statement = self.parse_single_assign("x = sum + A[i];")
        assert isinstance(statement.value.right, ast.ArrayRead)

    def test_min_max(self):
        statement = self.parse_single_assign("x = 1 + max(a, b);")
        assert isinstance(statement.value.right, ast.MinMax)

    def test_ternary_with_nondet_condition(self):
        statement = self.parse_single_assign("x = nondet() ? n - 1 : n - 2;")
        value = statement.value
        assert isinstance(value, ast.Ternary)
        assert isinstance(value.condition, ast.NondetBool)

    def test_nondet_bounded(self):
        statement = self.parse_single_assign("x = nondet(0, size);")
        assert isinstance(statement.value, ast.Nondet)
        assert statement.value.upper is not None


class TestConditions:
    def parse_condition_of_if(self, text):
        block = parse_procedure_body("{ if (" + text + ") { x = 1; } }")
        return block.statements[0].condition

    def test_comparison(self):
        condition = self.parse_condition_of_if("i >= n")
        assert isinstance(condition, ast.Compare)
        assert condition.op == ">="

    def test_boolean_combination(self):
        condition = self.parse_condition_of_if("n == 0 || n == 1 && m > 2")
        assert isinstance(condition, ast.BoolOp)
        assert condition.op == "||"

    def test_negation(self):
        condition = self.parse_condition_of_if("!(x < y)")
        assert isinstance(condition, ast.NotCond)

    def test_bare_variable_means_nonzero(self):
        condition = self.parse_condition_of_if("found")
        assert isinstance(condition, ast.Compare)
        assert condition.op == "!="

    def test_star_is_nondeterministic(self):
        block = parse_procedure_body("{ while (*) { x = x + 1; } }")
        assert isinstance(block.statements[0].condition, ast.NondetBool)

    def test_parenthesized_arithmetic_condition(self):
        condition = self.parse_condition_of_if("(x + 1) > 2")
        assert isinstance(condition, ast.Compare)
        assert condition.op == ">"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int f() { x = 1 }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_program("int f() { x = 1; ")

    def test_bad_nondet_arity(self):
        with pytest.raises(ParseError):
            parse_program("int f() { x = nondet(1); return x; }")

    def test_error_mentions_line(self):
        try:
            parse_program("int f() {\n  x = ;\n}")
        except ParseError as error:
            assert "line 2" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected a parse error")
