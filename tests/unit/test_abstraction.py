"""Unit tests for symbolic abstraction (Abstract / Alg. 1 and its non-linear variant)."""


from repro.abstraction import (
    AbstractionOptions,
    abstract,
    formula_entails,
    is_formula_satisfiable,
)
from repro.formulas import (
    Polynomial,
    atom_eq,
    atom_ge,
    atom_le,
    conjoin,
    disjoin,
    exists,
    fresh,
    post,
    sym,
)
from repro.polyhedra import LinearConstraint

X, Y, Z = sym("x"), sym("y"), sym("z")
XP, YP = post("x"), post("y")
PX, PY, PZ = Polynomial.var(X), Polynomial.var(Y), Polynomial.var(Z)
PXP, PYP = Polynomial.var(XP), Polynomial.var(YP)


def entailed(result, polynomial):
    """Whether the abstraction entails ``polynomial <= 0``."""
    atoms = []
    for ineq in result.inequations:
        atoms.extend(ineq.as_le_list())
    from repro.polyhedra import entails, LinearConstraint
    from repro.abstraction import LinearizationContext

    context = LinearizationContext()
    constraints = [LinearConstraint.le(context.linearize_polynomial(p)) for p in atoms]
    candidate = LinearConstraint.le(context.linearize_polynomial(polynomial))
    return entails(constraints, candidate)


class TestLinearAbstraction:
    def test_projection_of_conjunction(self):
        # x' = x + 1 and x <= 5  implies  x' <= 6 over {x'}
        formula = conjoin([atom_eq(PXP, PX + 1), atom_le(PX, 5)])
        result = abstract(formula, [XP])
        assert entailed(result, PXP - 6)

    def test_join_of_branches(self):
        # (x' = 1) or (x' = 3)  implies  1 <= x' <= 3
        formula = disjoin([atom_eq(PXP, 1), atom_eq(PXP, 3)])
        result = abstract(formula, [XP])
        assert entailed(result, PXP - 3)
        assert entailed(result, 1 - PXP)

    def test_join_discovers_rotated_face(self):
        # (x'=0 and y'=0) or (x'=2 and y'=2) implies x' = y' on the hull.
        formula = disjoin(
            [
                conjoin([atom_eq(PXP, 0), atom_eq(PYP, 0)]),
                conjoin([atom_eq(PXP, 2), atom_eq(PYP, 2)]),
            ]
        )
        result = abstract(formula, [XP, YP])
        assert entailed(result, PXP - PYP)
        assert entailed(result, PYP - PXP)

    def test_exists_is_projected(self):
        t = fresh("t")
        pt = Polynomial.var(t)
        # exists t. x' = t and t <= y   implies  x' <= y
        formula = exists([t], conjoin([atom_eq(PXP, pt), atom_le(pt, PY)]))
        result = abstract(formula, [XP, Y])
        assert entailed(result, PXP - PY)

    def test_unsat_formula_yields_contradiction(self):
        formula = conjoin([atom_le(PX, 0), atom_ge(PX, 1)])
        result = abstract(formula, [X])
        assert result.polyhedron.is_empty()

    def test_weak_join_option_is_sound(self):
        formula = disjoin([atom_eq(PXP, 1), atom_eq(PXP, 3)])
        weak = abstract(formula, [XP], AbstractionOptions(exact_hull=False))
        assert entailed(weak, PXP - 3)

    def test_irrelevant_symbols_dropped(self):
        formula = conjoin([atom_le(PX, PY), atom_le(PY, PZ)])
        result = abstract(formula, [X, Z])
        assert entailed(result, PX - PZ)
        symbols = set()
        for ineq in result.inequations:
            symbols |= ineq.polynomial.symbols
        assert Y not in symbols


class TestNonlinearAbstraction:
    def test_square_is_nonnegative(self):
        # y' = x*x  implies  y' >= 0
        formula = atom_eq(PYP, PX * PX)
        result = abstract(formula, [YP])
        assert entailed(result, -PYP)

    def test_product_of_nonnegatives(self):
        # x >= 0, y >= 0, z = x*y  implies  z >= 0
        formula = conjoin([atom_ge(PX, 0), atom_ge(PY, 0), atom_eq(PZ, PX * PY)])
        result = abstract(formula, [Z])
        assert entailed(result, -PZ)

    def test_constant_factor_collapses_product(self):
        # x = 3, z = x*y  implies  z = 3y
        formula = conjoin([atom_eq(PX, 3), atom_eq(PZ, PX * PY)])
        result = abstract(formula, [Z, Y])
        assert entailed(result, PZ - 3 * PY)
        assert entailed(result, 3 * PY - PZ)

    def test_bounded_factor_bounds_product(self):
        # 0 <= x <= 2, y >= 0, z = x*y  implies  z <= 2y
        formula = conjoin(
            [atom_ge(PX, 0), atom_le(PX, 2), atom_ge(PY, 0), atom_eq(PZ, PX * PY)]
        )
        result = abstract(formula, [Z, Y])
        assert entailed(result, PZ - 2 * PY)

    def test_congruence_of_equal_monomials(self):
        # y = x*x and z = x*x  implies  y = z
        formula = conjoin([atom_eq(PY, PX * PX), atom_eq(PZ, PX * PX)])
        result = abstract(formula, [Y, Z])
        assert entailed(result, PY - PZ)
        assert entailed(result, PZ - PY)


class TestSatisfiabilityAndEntailment:
    def test_satisfiable(self):
        assert is_formula_satisfiable(atom_le(PX, 5))

    def test_unsatisfiable_linear(self):
        assert not is_formula_satisfiable(conjoin([atom_le(PX, 0), atom_ge(PX, 1)]))

    def test_unsatisfiable_via_squares(self):
        # x*x < 0 is unsatisfiable thanks to the even-power rule.
        formula = atom_le(PX * PX, -1)
        assert not is_formula_satisfiable(formula)

    def test_entails_simple(self):
        hypothesis = conjoin([atom_le(PX, PY), atom_le(PY, PZ)])
        assert formula_entails(hypothesis, atom_le(PX, PZ))
        assert not formula_entails(hypothesis, atom_le(PZ, PX))

    def test_entails_disjunctive_conclusion(self):
        hypothesis = atom_eq(PX, 3)
        conclusion = disjoin([atom_le(PX, 2), atom_ge(PX, 3)])
        assert formula_entails(hypothesis, conclusion)

    def test_entails_equality_conclusion(self):
        hypothesis = conjoin([atom_le(PX, PY), atom_le(PY, PX)])
        assert formula_entails(hypothesis, atom_eq(PX, PY))
