"""Regression tests for interpreter/front-end bugs the fuzzer flushed out.

Each test class pins one fix:

* empty ``nondet(lo, hi)`` ranges block the run (no silent clamping);
* ``assume`` raises :class:`AssumeBlocked`, distinct from assertion failure;
* call-arity mismatches fail loudly — at parse time for whole programs, at
  run time for hand-built ASTs;
* division is floor division end-to-end: the interpreter and the relational
  semantics agree on every dividend, negative ones included.
"""

import pytest

from repro.core import ChoraOptions, analyze_program, check_assertions
from repro.lang import ast, parse_program
from repro.lang.interp import (
    AssertionFailure,
    AssumeBlocked,
    Interpreter,
    InterpreterError,
)
from repro.lang.parser import ParseError


class TestEmptyNondetRange:
    def test_empty_range_blocks(self):
        program = parse_program(
            "int main(int n) { int x = nondet(0, n); return x; }"
        )
        with pytest.raises(AssumeBlocked):
            Interpreter(program).run("main", [0])

    def test_reversed_range_blocks(self):
        program = parse_program(
            "int main() { int x = nondet(5, 2); return x; }"
        )
        with pytest.raises(AssumeBlocked):
            Interpreter(program).run("main")

    def test_nonempty_range_is_half_open(self):
        program = parse_program(
            "int main(int n) { int x = nondet(0, n); return x; }"
        )
        for seed in range(20):
            import random

            result = Interpreter(program, rng=random.Random(seed)).run("main", [3])
            assert 0 <= result.return_value < 3

    def test_singleton_range_yields_its_value(self):
        program = parse_program("int main() { return nondet(4, 5); }")
        assert Interpreter(program).run("main").return_value == 4

    def test_default_range_is_half_open(self):
        import random

        program = parse_program("int main() { return nondet(); }")
        interpreter = Interpreter(program, rng=random.Random(0), nondet_range=(3, 4))
        assert interpreter.run("main").return_value == 3


class TestAssumeBlockedDistinct:
    def test_failed_assume_raises_assume_blocked(self):
        program = parse_program("int main(int n) { assume(n > 10); return n; }")
        with pytest.raises(AssumeBlocked):
            Interpreter(program).run("main", [1])

    def test_failed_assume_is_not_assertion_failure(self):
        program = parse_program("int main(int n) { assume(n > 10); return n; }")
        try:
            Interpreter(program).run("main", [1])
        except AssumeBlocked as blocked:
            assert not isinstance(blocked, AssertionFailure)
        else:  # pragma: no cover - the raise is the point
            pytest.fail("expected AssumeBlocked")

    def test_failed_assert_still_raises_assertion_failure(self):
        program = parse_program("int main(int n) { assert(n > 10); return n; }")
        with pytest.raises(AssertionFailure):
            Interpreter(program).run("main", [1])

    def test_assume_blocked_exported_from_lang(self):
        from repro.lang import AssumeBlocked as exported

        assert exported is AssumeBlocked


class TestCallArity:
    def test_parse_time_arity_validation(self):
        with pytest.raises(ParseError, match="argument"):
            parse_program(
                "int f(int a, int b) { return a + b; }"
                " int main() { return f(1); }"
            )

    def test_parse_time_arity_validation_excess(self):
        with pytest.raises(ParseError, match="argument"):
            parse_program(
                "int f(int a) { return a; } int main() { return f(1, 2); }"
            )

    def test_interpreter_rejects_arity_mismatch(self):
        # Built directly: the parser would reject this source.
        callee = ast.Procedure(
            "f",
            (ast.Parameter("a"), ast.Parameter("b")),
            ast.Block((ast.Return(ast.VarRef("a")),)),
        )
        entry = ast.Procedure(
            "main",
            (),
            ast.Block((ast.Return(ast.CallExpr("f", (ast.IntLit(1),))),)),
        )
        program = ast.Program((), (callee, entry))
        with pytest.raises(InterpreterError, match="argument"):
            Interpreter(program).run("main")

    def test_run_rejects_wrong_argument_count(self):
        program = parse_program("int main(int n, int m) { return n + m; }")
        with pytest.raises(InterpreterError, match="2 scalar argument"):
            Interpreter(program).run("main", [1])

    def test_run_rejects_unknown_named_argument(self):
        program = parse_program("int main(int n) { return n; }")
        with pytest.raises(InterpreterError, match="unknown"):
            Interpreter(program).run("main", {"n": 1, "typo": 2})

    def test_run_rejects_missing_named_argument(self):
        program = parse_program("int main(int n, int m) { return n + m; }")
        with pytest.raises(InterpreterError, match="missing"):
            Interpreter(program).run("main", {"n": 1})


class TestFloorDivision:
    def test_interpreter_floors_negative_dividends(self):
        program = parse_program("int main(int n) { return n / 2; }")
        for dividend in range(-10, 11):
            result = Interpreter(program).run("main", [dividend])
            assert result.return_value == dividend // 2, dividend

    def test_relational_model_agrees_on_negative_dividend(self):
        # Differential pin of the division semantics: the analyser's
        # relational model c*q <= e <= c*q + (c-1) must single out exactly
        # the interpreter's floor(-7 / 2) = -4 (C-style truncation would
        # give -3 and fail the equality assertion).
        source = (
            "void main(int n) {"
            "  assume(n == -7);"
            "  int q = n / 2;"
            "  assert(q == -4);"
            "  assert(q >= -4);"
            "  assert(q <= -4);"
            "}"
        )
        program = parse_program(source)
        options = ChoraOptions()
        outcomes = check_assertions(analyze_program(program, options), options.abstraction)
        assert len(outcomes) == 3
        assert all(outcome.proved for outcome in outcomes), [
            str(outcome) for outcome in outcomes
        ]

    def test_interpreter_matches_concrete_floor_for_several_divisors(self):
        for divisor in (2, 3, 4):
            program = parse_program(f"int main(int n) {{ return n / {divisor}; }}")
            for dividend in (-9, -1, 0, 1, 9):
                result = Interpreter(program).run("main", [dividend])
                assert result.return_value == dividend // divisor


class TestProcedureDepths:
    def test_peak_live_frames_counted_per_procedure(self):
        program = parse_program(
            "int f(int n) { if (n <= 0) { return 0; } int r = f(n - 1); return r; }"
            " int main(int n) { return f(n); }"
        )
        result = Interpreter(program).run("main", [4])
        assert result.procedure_depths["f"] == 5  # frames at n=4..0
        assert result.procedure_depths["main"] == 1

    def test_sibling_calls_do_not_accumulate(self):
        program = parse_program(
            "int g(int n) { return n; }"
            " int main(int n) { int a = g(n); int b = g(n); return a + b; }"
        )
        result = Interpreter(program).run("main", [1])
        assert result.procedure_depths["g"] == 1
