"""``tools/check_invariants.py``: the source-invariant checker.

The real sources must be clean, and each checker must actually catch the
defect class it exists for (seeded violations in a temporary tree).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_invariants", REPO_ROOT / "tools" / "check_invariants.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_invariants", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def seeded_tree(tmp_path, checker, monkeypatch):
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    return root


class TestRepositoryIsClean:
    def test_knob_isolation(self, checker):
        assert checker.check_knob_isolation() == []

    def test_unpickler_allowlists(self, checker):
        assert checker.check_unpickler_allowlists() == []


class TestKnobIsolation:
    def test_key_function_referencing_a_knob_is_flagged(self, checker, seeded_tree):
        (seeded_tree / "bad.py").write_text(
            "def cache_key(task):\n"
            "    from .core import set_parallel_sccs\n"
            "    return set_parallel_sccs()\n"
        )
        problems = checker.check_knob_isolation(seeded_tree)
        assert len(problems) == 1
        assert "set_parallel_sccs" in problems[0]

    def test_key_module_referencing_a_knob_is_flagged(self, checker, seeded_tree):
        cache = seeded_tree / "engine"
        cache.mkdir()
        (cache / "cache.py").write_text(
            "from ..polyhedra.simplex import simplex_kernel\n"
        )
        problems = checker.check_knob_isolation(seeded_tree)
        assert len(problems) == 1
        assert "simplex_kernel" in problems[0]

    def test_options_dataclass_with_knob_field_is_flagged(self, checker, seeded_tree):
        (seeded_tree / "opts.py").write_text(
            "class FooOptions:\n    parallel_sccs: int = 0\n"
        )
        problems = checker.check_knob_isolation(seeded_tree)
        assert len(problems) == 1
        assert "FooOptions" in problems[0]

    def test_clean_function_is_not_flagged(self, checker, seeded_tree):
        (seeded_tree / "ok.py").write_text(
            "def cache_key(task):\n    return hash(task)\n"
            "def run(options):\n"
            "    from .core import set_parallel_sccs\n"
            "    return set_parallel_sccs()\n"
        )
        assert checker.check_knob_isolation(seeded_tree) == []


class TestUnpicklerAllowlists:
    def test_computed_allowlist_is_flagged(self, checker, seeded_tree):
        (seeded_tree / "bad.py").write_text(
            "names = [('os', 'system')]\n"
            "ALLOWED = frozenset((m, n) for m, n in names)\n"
            "def load(data):\n"
            "    return restricted_loads(data, ALLOWED)\n"
        )
        problems = checker.check_unpickler_allowlists(seeded_tree)
        assert len(problems) == 1
        assert "not a literal set" in problems[0]

    def test_wildcard_entry_is_flagged(self, checker, seeded_tree):
        (seeded_tree / "bad.py").write_text(
            'ALLOWED = {("repro.*", "Symbol")}\n'
            "def load(data):\n"
            "    return restricted_loads(data, ALLOWED)\n"
        )
        problems = checker.check_unpickler_allowlists(seeded_tree)
        assert len(problems) == 1
        assert "wildcard" in problems[0]

    def test_literal_allowlist_is_clean(self, checker, seeded_tree):
        (seeded_tree / "ok.py").write_text(
            'ALLOWED = {("builtins", "frozenset"), ("fractions", "Fraction")}\n'
            "def load(data):\n"
            "    return restricted_loads(data, ALLOWED)\n"
        )
        assert checker.check_unpickler_allowlists(seeded_tree) == []
