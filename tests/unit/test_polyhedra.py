"""Unit tests for the polyhedral domain: constraints, LP, projection, hulls."""


import pytest

from repro.formulas import Polynomial, sym
from repro.polyhedra import (
    ConstraintKind,
    LinearConstraint,
    Polyhedron,
    convex_hull,
    convex_hull_pair,
    eliminate,
    entails,
    is_satisfiable,
    maximize,
    weak_join,
)

X = sym("x")
Y = sym("y")
Z = sym("z")
PX, PY, PZ = Polynomial.var(X), Polynomial.var(Y), Polynomial.var(Z)


def le(poly):
    return LinearConstraint.le(poly)


def eq(poly):
    return LinearConstraint.eq(poly)


class TestLinearConstraint:
    def test_le_from_polynomial(self):
        c = le(PX - PY + 3)
        assert c.coefficient(X) == 1
        assert c.coefficient(Y) == -1
        assert c.constant == 3
        assert c.kind is ConstraintKind.LE

    def test_nonlinear_rejected(self):
        with pytest.raises(ValueError):
            le(PX * PY)

    def test_trivial_and_contradiction(self):
        assert LinearConstraint.make({}, -1).is_trivial
        assert LinearConstraint.make({}, 1).is_contradiction
        assert LinearConstraint.make({}, 0, ConstraintKind.EQ).is_trivial

    def test_scale_negative_le_rejected(self):
        with pytest.raises(ValueError):
            le(PX).scale(-1)

    def test_add(self):
        c = le(PX - 1).add(le(PY - 2))
        assert c.coefficient(X) == 1
        assert c.coefficient(Y) == 1
        assert c.constant == -3

    def test_round_trip_atom(self):
        c = le(2 * PX - PY + 1)
        atom = c.to_atom()
        assert atom.polynomial == 2 * PX - PY + 1

    def test_evaluate(self):
        c = le(PX - PY)  # x <= y
        assert c.evaluate({X: 1, Y: 2})
        assert not c.evaluate({X: 3, Y: 2})

    def test_rename_merges(self):
        c = le(PX + PY)
        renamed = c.rename({Y: X})
        assert renamed.coefficient(X) == 2


class TestLp:
    def test_satisfiable_simple(self):
        assert is_satisfiable([le(PX - 10), le(-PX)])  # 0 <= x <= 10

    def test_unsatisfiable(self):
        assert not is_satisfiable([le(PX - 1), le(2 - PX)])  # x<=1 and x>=2

    def test_maximize_bounded(self):
        result = maximize({X: 1}, [le(PX - 7), le(-PX)])
        assert result.is_optimal
        assert result.value == pytest.approx(7.0)

    def test_maximize_unbounded(self):
        result = maximize({X: 1}, [le(-PX)])
        assert result.is_unbounded

    def test_entails_basic(self):
        # x <= 3 and y <= x  entails  y <= 3
        assert entails([le(PX - 3), le(PY - PX)], le(PY - 3))
        assert not entails([le(PX - 3)], le(PX - 2))

    def test_entails_equality(self):
        assert entails([eq(PX - PY), le(PY - 5)], le(PX - 5))
        assert entails([eq(PX - 2)], eq(2 * PX - 4))

    def test_infeasible_entails_everything(self):
        assert entails([le(PX - 1), le(2 - PX)], le(PX - -100))

    def test_large_constants(self):
        # Relevant for the pow2_overflow benchmark (2^30 bound).
        big = 1073741824
        assert entails([le(PX - (big - 1))], le(PX - big))
        assert not entails([le(PX - big)], le(PX - (big - 1)))


class TestElimination:
    def test_equality_substitution(self):
        # y = x + 1, y <= 5   |-  x <= 4
        out = eliminate([eq(PY - PX - 1), le(PY - 5)], [Y])
        poly_out = Polyhedron(out)
        assert poly_out.entails(le(PX - 4))
        assert not poly_out.entails(le(PX - 3))

    def test_fourier_motzkin_combination(self):
        # x <= y, y <= z  |-  (eliminate y)  x <= z
        out = eliminate([le(PX - PY), le(PY - PZ)], [Y])
        assert Polyhedron(out).entails(le(PX - PZ))

    def test_eliminate_unconstrained_symbol(self):
        out = eliminate([le(PX - 1)], [Y])
        assert Polyhedron(out).entails(le(PX - 1))

    def test_eliminate_detects_contradiction(self):
        out = eliminate([le(PX - PY), le(PY - PX - -1), ], [Y])
        # x <= y and y <= x - 1 is contradictory
        assert Polyhedron(out).is_empty()

    def test_projection_keeps_remaining_relations(self):
        # x = y, y = z  |- (eliminate y)  x = z
        out = eliminate([eq(PX - PY), eq(PY - PZ)], [Y])
        poly_out = Polyhedron(out)
        assert poly_out.entails(eq(PX - PZ))


class TestPolyhedron:
    def test_universe_and_empty(self):
        assert Polyhedron.universe().is_universe
        assert not Polyhedron.universe().is_empty()
        assert Polyhedron.empty().is_empty()

    def test_meet(self):
        p = Polyhedron([le(PX - 5)]).meet(Polyhedron([le(3 - PX)]))
        assert not p.is_empty()
        assert p.entails(le(PX - 5))
        assert p.entails(le(3 - PX))

    def test_meet_contradiction(self):
        p = Polyhedron([le(PX - 1)]).meet(Polyhedron([le(2 - PX)]))
        assert p.is_empty()

    def test_project_onto(self):
        p = Polyhedron([eq(PY - PX - 1), le(PY - 10)])
        q = p.project_onto([X])
        assert q.entails(le(PX - 9))
        assert q.symbols <= frozenset({X})

    def test_entails_and_contains(self):
        small = Polyhedron([le(PX - 1), le(-PX)])
        big = Polyhedron([le(PX - 5), le(-PX - 1)])
        assert big.contains(small)
        assert not small.contains(big)

    def test_upper_bound(self):
        p = Polyhedron([le(PX - 3), le(-PX)])
        assert p.upper_bound({X: 1}) == pytest.approx(3.0)
        assert Polyhedron([le(-PX)]).upper_bound({X: 1}) is None

    def test_minimize_removes_redundant(self):
        p = Polyhedron([le(PX - 1), le(PX - 5)])
        m = p.minimize()
        assert len(m) == 1
        assert m.entails(le(PX - 1))

    def test_widen_keeps_stable_constraints(self):
        p = Polyhedron([le(PX - 1), le(-PX)])
        q = Polyhedron([le(PX - 2), le(-PX)])
        w = p.widen(q)
        assert w.entails(le(-PX))
        assert not w.entails(le(PX - 1))

    def test_to_formula_round_trip(self):
        p = Polyhedron([le(PX - 3)])
        formula = p.to_formula()
        assert "x" in str(formula)

    def test_equality_semantic(self):
        p = Polyhedron([le(PX - 3), le(PX - 5)])
        q = Polyhedron([le(PX - 3)])
        assert p == q


class TestHull:
    def test_hull_of_points(self):
        # {x = 0} join {x = 2}  ==  0 <= x <= 2
        p0 = Polyhedron([eq(PX)])
        p2 = Polyhedron([eq(PX - 2)])
        hull = convex_hull_pair(p0, p2)
        assert hull.entails(le(-PX))
        assert hull.entails(le(PX - 2))
        assert not hull.is_empty()

    def test_hull_with_empty(self):
        p = Polyhedron([le(PX - 1)])
        assert convex_hull_pair(p, Polyhedron.empty()) == p
        assert convex_hull_pair(Polyhedron.empty(), p) == p

    def test_hull_two_dimensional(self):
        # {x=0, 0<=y<=1} join {x=1, 0<=y<=1}: unit square
        left = Polyhedron([eq(PX), le(-PY), le(PY - 1)])
        right = Polyhedron([eq(PX - 1), le(-PY), le(PY - 1)])
        hull = convex_hull_pair(left, right)
        assert hull.entails(le(-PX))
        assert hull.entails(le(PX - 1))
        assert hull.entails(le(PY - 1))
        assert hull.entails(le(-PY))

    def test_hull_rotated_face(self):
        # {(0,0)} join {(1,1)} should include x = y (a constraint in neither).
        a = Polyhedron([eq(PX), eq(PY)])
        b = Polyhedron([eq(PX - 1), eq(PY - 1)])
        hull = convex_hull_pair(a, b)
        assert hull.entails(eq(PX - PY))

    def test_weak_join_is_sound_superset(self):
        a = Polyhedron([eq(PX), eq(PY)])
        b = Polyhedron([eq(PX - 1), eq(PY - 1)])
        weak = weak_join(a, b)
        exact = convex_hull_pair(a, b)
        assert weak.contains(exact)

    def test_hull_many(self):
        polys = [Polyhedron([eq(PX - i)]) for i in range(4)]
        hull = convex_hull(polys)
        assert hull.entails(le(-PX))
        assert hull.entails(le(PX - 3))

    def test_hull_unbounded(self):
        # {x >= 0, y = 0} join {x >= 0, y = x}: 0 <= y <= x
        a = Polyhedron([le(-PX), eq(PY)])
        b = Polyhedron([le(-PX), eq(PY - PX)])
        hull = convex_hull_pair(a, b)
        assert hull.entails(le(-PX))
        assert hull.entails(le(PY - PX))
        assert hull.entails(le(-PY))
