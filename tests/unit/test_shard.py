"""The deterministic suite-sharding partition and the shared-store merge.

The contract tested here is what lets N machines act as one batch: the
partition is a pure function of task content (deterministic across calls,
orderings and hosts), every task lands on exactly one shard (disjoint +
exhaustive), and merging foreign results from a shared cache reproduces the
unsharded suite bit-identically once every shard has run.
"""

import pytest

from repro.core import ChoraOptions
from repro.engine import (
    AnalysisTask,
    BatchEngine,
    MemoryStorage,
    ResultCache,
    suite_tasks,
)
from repro.engine.shard import (
    merged_shard_results,
    parse_shard,
    partition_tasks,
    shard_index,
)


class TestParseShard:
    def test_valid_specs(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard(" 3/3 ") == (3, 3)

    @pytest.mark.parametrize(
        "spec", ["", "0/2", "3/2", "2/0", "a/b", "1", "1/2/3", "-1/2"]
    )
    def test_invalid_specs(self, spec):
        with pytest.raises(ValueError):
            parse_shard(spec)


class TestPartition:
    def tasks(self):
        return suite_tasks("all", True)

    def test_deterministic(self):
        tasks = self.tasks()
        for count in (1, 2, 3, 5):
            first = [shard_index(task, count) for task in tasks]
            second = [shard_index(task, count) for task in tasks]
            assert first == second

    def test_disjoint_and_exhaustive(self):
        tasks = self.tasks()
        for count in (1, 2, 3, 5):
            seen: dict[int, int] = {}
            for index in range(1, count + 1):
                mine, foreign = partition_tasks(tasks, index, count)
                assert len(mine) + len(foreign) == len(tasks)
                for position, _ in mine:
                    assert position not in seen, "two shards own one task"
                    seen[position] = index
            assert sorted(seen) == list(range(len(tasks))), "a task has no shard"

    def test_independent_of_suite_order_and_name(self):
        task = AnalysisTask(name="a", source="int main() { return 0; }", kind="analyze")
        renamed = AnalysisTask(
            name="b", source="int main() { return 0; }", kind="analyze"
        )
        for count in (2, 3, 7):
            assert shard_index(task, count) == shard_index(renamed, count)

    def test_content_moves_shards_somewhere(self):
        # Not a property of any single count, but across a few counts two
        # different programs should not always collide.
        one = AnalysisTask(name="x", source="int main() { return 1; }")
        two = AnalysisTask(name="x", source="int main() { return 2; }")
        assert any(
            shard_index(one, count) != shard_index(two, count)
            for count in range(2, 20)
        )


class TestMergeFromSharedStore:
    #: Tiny but real analyses, so cached payloads are the true article.
    def tasks(self):
        sources = {
            "inc": "int main(int n) { assume(n >= 0); assert(n + 1 >= 1); return n; }",
            "square": "int main(int n) { assume(n >= 2); assert(n * n >= 4); return n; }",
            "open": "int main(int n) { assert(n >= 0); return n; }",
            "sum": "int main(int n) { assume(n >= 0); assert(n + n >= n); return n; }",
        }
        return [
            AnalysisTask(name=name, source=source, kind="assertion", suite="toy")
            for name, source in sources.items()
        ]

    def test_two_shards_reproduce_the_unsharded_run_bit_identically(self):
        tasks = self.tasks()
        options = ChoraOptions()
        unsharded = BatchEngine(options=options).run(tasks)

        shared = ResultCache(storage=MemoryStorage())
        count = 2
        merged_views = []
        for index in (1, 2):
            mine, foreign = partition_tasks(tasks, index, count)
            own = BatchEngine(cache=shared, options=options).run(
                [task for _, task in mine]
            )
            merged_views.append(
                merged_shard_results(
                    tasks, own, mine, foreign, shared, options, count
                )
            )

        # After the last shard ran, its merged view is the complete suite...
        final = merged_views[-1]
        assert [result.name for result in final] == [task.name for task in tasks]
        assert all(result.outcome == "ok" for result in final)
        # ...with payloads bit-identical to the unsharded run.
        for sharded, reference in zip(final, unsharded):
            assert sharded.proved == reference.proved
            assert sharded.bound == reference.bound
            assert dict(sharded.payload) == dict(reference.payload)

    def test_unfinished_shards_surface_as_pending(self):
        tasks = self.tasks()
        options = ChoraOptions()
        shared = ResultCache(storage=MemoryStorage())
        count = 2
        mine, foreign = partition_tasks(tasks, 1, count)
        if not foreign:
            pytest.skip("every toy task hashed to shard 1")
        merged = merged_shard_results(
            tasks, [], [], foreign, shared, options, count
        )
        # The merged report always covers the whole suite: foreign tasks are
        # pending on their owning shard, and tasks this call claimed nothing
        # about surface as explicit errors instead of silently disappearing.
        assert [result.name for result in merged] == [task.name for task in tasks]
        foreign_positions = {position for position, _ in foreign}
        for position, result in enumerate(merged):
            if position in foreign_positions:
                assert result.outcome == "pending"
                assert "shard" in result.detail
            else:
                assert result.outcome == "error"
                assert "no result was recorded" in result.detail
