"""Unit tests for polynomials and monomials."""

from fractions import Fraction

import pytest

from repro.formulas import Monomial, Polynomial, sym, post


X = sym("x")
Y = sym("y")
XP = post("x")


class TestMonomial:
    def test_unit_monomial(self):
        assert Monomial.unit().is_unit
        assert Monomial.unit().degree == 0

    def test_of_symbol(self):
        m = Monomial.of(X)
        assert m.degree == 1
        assert m.power_of(X) == 1
        assert m.power_of(Y) == 0

    def test_of_zero_power_is_unit(self):
        assert Monomial.of(X, 0) == Monomial.unit()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Monomial.of(X, -1)

    def test_multiplication_merges_powers(self):
        m = Monomial.of(X) * Monomial.of(X, 2) * Monomial.of(Y)
        assert m.power_of(X) == 3
        assert m.power_of(Y) == 1
        assert m.degree == 4

    def test_symbols(self):
        m = Monomial.of(X) * Monomial.of(Y)
        assert m.symbols == frozenset({X, Y})

    def test_str(self):
        assert str(Monomial.of(X, 2)) == "x^2"
        assert str(Monomial.unit()) == "1"


class TestPolynomialConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero
        assert Polynomial.zero() == 0

    def test_constant(self):
        p = Polynomial.constant(5)
        assert p.is_constant
        assert p.constant_value == 5

    def test_var(self):
        p = Polynomial.var(X)
        assert p.coefficient_of_symbol(X) == 1
        assert p.degree == 1

    def test_zero_coefficients_dropped(self):
        p = Polynomial({Monomial.of(X): 0})
        assert p.is_zero


class TestPolynomialArithmetic:
    def test_addition(self):
        p = Polynomial.var(X) + Polynomial.var(X) + 3
        assert p.coefficient_of_symbol(X) == 2
        assert p.constant_value == 3

    def test_subtraction_cancels(self):
        p = Polynomial.var(X) - Polynomial.var(X)
        assert p.is_zero

    def test_multiplication(self):
        p = (Polynomial.var(X) + 1) * (Polynomial.var(X) - 1)
        assert p == Polynomial.var(X) * Polynomial.var(X) - 1

    def test_multiplication_degree(self):
        p = Polynomial.var(X) * Polynomial.var(Y) * Polynomial.var(X)
        assert p.degree == 3

    def test_power(self):
        p = (Polynomial.var(X) + 1) ** 2
        assert p.coefficient(Monomial.of(X, 2)) == 1
        assert p.coefficient(Monomial.of(X)) == 2
        assert p.constant_value == 1

    def test_power_zero(self):
        assert (Polynomial.var(X) ** 0) == 1

    def test_scale_by_fraction(self):
        p = Polynomial.var(X).scale(Fraction(1, 2))
        assert p.coefficient_of_symbol(X) == Fraction(1, 2)

    def test_negation(self):
        p = -(Polynomial.var(X) + 2)
        assert p.coefficient_of_symbol(X) == -1
        assert p.constant_value == -2

    def test_rmul_int(self):
        p = 3 * Polynomial.var(X)
        assert p.coefficient_of_symbol(X) == 3


class TestPolynomialStructure:
    def test_is_linear(self):
        assert (Polynomial.var(X) + 2 * Polynomial.var(Y) + 1).is_linear
        assert not (Polynomial.var(X) * Polynomial.var(Y)).is_linear

    def test_symbols(self):
        p = Polynomial.var(X) * Polynomial.var(Y) + Polynomial.var(XP)
        assert p.symbols == frozenset({X, Y, XP})

    def test_split_linear(self):
        p = Polynomial.var(X) * Polynomial.var(X) + 2 * Polynomial.var(Y) + 7
        linear, constant, nonlinear = p.split_linear()
        assert linear == {Y: 2}
        assert constant == 7
        assert nonlinear == Polynomial.var(X) * Polynomial.var(X)

    def test_nonlinear_monomials(self):
        p = Polynomial.var(X) * Polynomial.var(Y) + Polynomial.var(X)
        monos = p.nonlinear_monomials()
        assert len(monos) == 1
        assert monos[0].degree == 2

    def test_linear_coefficients(self):
        p = 2 * Polynomial.var(X) - 3 * Polynomial.var(Y) + 5
        assert p.linear_coefficients() == {X: 2, Y: -3}


class TestSubstitutionEvaluation:
    def test_substitute_symbol(self):
        p = Polynomial.var(X) * Polynomial.var(X) + Polynomial.var(Y)
        q = p.substitute({X: Polynomial.var(Y) + 1})
        # (y+1)^2 + y = y^2 + 3y + 1
        assert q.coefficient(Monomial.of(Y, 2)) == 1
        assert q.coefficient(Monomial.of(Y)) == 3
        assert q.constant_value == 1

    def test_rename(self):
        p = Polynomial.var(X) + Polynomial.var(Y)
        q = p.rename({X: XP})
        assert q.coefficient_of_symbol(XP) == 1
        assert q.coefficient_of_symbol(X) == 0

    def test_evaluate(self):
        p = Polynomial.var(X) * Polynomial.var(X) - Polynomial.var(Y) + 1
        assert p.evaluate({X: 3, Y: 4}) == 6

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            Polynomial.var(X).evaluate({Y: 1})

    def test_evaluate_fraction(self):
        p = Polynomial.var(X).scale(Fraction(1, 3))
        assert p.evaluate({X: 1}) == Fraction(1, 3)


class TestEqualityHash:
    def test_equal_polynomials_hash_equal(self):
        p = Polynomial.var(X) + 1
        q = 1 + Polynomial.var(X)
        assert p == q
        assert hash(p) == hash(q)

    def test_constant_comparison_with_int(self):
        assert Polynomial.constant(3) == 3
        assert Polynomial.constant(3) != 4
