"""Unit tests for the batch-analysis engine.

Covers the cache-key contract (stability, content addressing), cache
hit/miss behaviour, per-task timeout / crash / error isolation, result
ordering, determinism of parallel vs. serial runs, and the suite-task
protocol.  Worker behaviours are exercised through ad-hoc task kinds
registered by this module (workers inherit the registry).
"""

import json
import os
import time

import pytest

from repro.benchlib.suites import SUITES, get_suite, iter_suite, suite_entry
from repro.core import ChoraOptions
from repro.engine import (
    AnalysisTask,
    BatchEngine,
    ResultCache,
    registered_kinds,
    suite_tasks,
    summarize_batch,
)
from repro.engine.cache import cache_key, make_cache
from repro.engine.tasks import execute_task, register_kind
from repro.lang import parse_program

TRIVIAL = "int main(int n) { assume(n >= 0); int r = n + 1; assert(r >= 1); return r; }"

#: Four fast assertion programs with distinct outcomes, for determinism runs.
DETERMINISM_PROGRAMS = {
    "inc": TRIVIAL,
    "nonneg": "int main(int n) { assume(n >= 2); assert(n * n >= 4); return n; }",
    "unprovable": "int main(int n) { assert(n >= 0); return n; }",
    "double": "int main(int n) { assume(n >= 0); int r = n + n; assert(r >= n); return r; }",
}


@register_kind("test-echo")
def _echo_runner(task, options):
    return {"proved": True, "value": task.param("value")}


@register_kind("test-sleep")
def _sleep_runner(task, options):
    time.sleep(float(task.param("seconds", 60)))
    return {"proved": True}


@register_kind("test-crash")
def _crash_runner(task, options):
    os._exit(3)


@register_kind("test-error")
def _error_runner(task, options):
    raise ValueError("intentional test failure")


def _task(name, kind, **params):
    return AnalysisTask(
        name=name, source="", kind=kind, params=tuple(sorted(params.items()))
    )


class TestOptionsSerialization:
    def test_round_trip(self):
        options = ChoraOptions(use_two_region=False)
        rebuilt = ChoraOptions.from_dict(options.to_dict())
        assert rebuilt == options
        assert rebuilt.fingerprint() == options.fingerprint()

    def test_fingerprint_distinguishes_options(self):
        assert (
            ChoraOptions().fingerprint()
            != ChoraOptions(use_alg4_depth=False).fingerprint()
        )

    def test_hashable(self):
        assert hash(ChoraOptions()) == hash(ChoraOptions())


class TestCacheKey:
    def test_stable_across_calls(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        assert cache_key(task, ChoraOptions()) == cache_key(task, ChoraOptions())

    def test_name_and_suite_are_not_inputs(self):
        first = AnalysisTask(name="a", source=TRIVIAL, kind="assertion", suite="s1")
        second = AnalysisTask(name="b", source=TRIVIAL, kind="assertion", suite="s2")
        assert cache_key(first, ChoraOptions()) == cache_key(second, ChoraOptions())

    def test_source_kind_and_options_are_inputs(self):
        base = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        options = ChoraOptions()
        keys = {
            cache_key(base, options),
            cache_key(
                AnalysisTask(name="toy", source=TRIVIAL + " ", kind="assertion"),
                options,
            ),
            cache_key(AnalysisTask(name="toy", source=TRIVIAL, kind="analyze"), options),
            cache_key(base, ChoraOptions(use_two_region=False)),
        }
        assert len(keys) == 4

    def test_key_shape(self):
        key = cache_key(AnalysisTask(name="t", source=TRIVIAL), ChoraOptions())
        assert len(key) == 64
        assert all(character in "0123456789abcdef" for character in key)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        cache.put("0" * 64, {"proved": True}, task_name="toy")
        assert cache.get("0" * 64) == {"proved": True}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("1" * 64 + ".json")
        path.write_text("{not json", encoding="utf-8")
        assert cache.get("1" * 64) is None

    def test_make_cache_precedence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        # an explicitly requested directory overrides the environment opt-out
        cache = make_cache(directory=tmp_path)
        assert cache is not None and cache.directory == tmp_path
        assert make_cache() is None
        # and --no-cache overrides everything
        assert make_cache(no_cache=True, directory=tmp_path) is None
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert make_cache() is not None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("2" * 64, {"a": 1})
        cache.put("3" * 64, {"b": 2})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0


class TestBatchEngine:
    def test_real_analysis_cache_miss_then_hit(self, tmp_path):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        engine = BatchEngine(jobs=2, cache=ResultCache(tmp_path))
        first = engine.run([task])[0]
        assert first.outcome == "ok"
        assert first.proved is True
        assert not first.cache_hit
        second = engine.run([task])[0]
        assert second.cache_hit
        assert second.outcome == "ok"
        assert dict(second.payload) == dict(first.payload)

    def test_results_come_back_in_task_order(self):
        tasks = [
            _task("slowish", "test-sleep", seconds=0.3),
            _task("fast", "test-echo", value=1),
        ]
        results = BatchEngine(jobs=2).run(tasks)
        assert [result.name for result in results] == ["slowish", "fast"]
        assert all(result.outcome == "ok" for result in results)

    def test_timeout_does_not_sink_the_batch(self):
        tasks = [
            _task("hang", "test-sleep", seconds=60),
            _task("fine", "test-echo", value=2),
        ]
        started = time.monotonic()
        results = BatchEngine(jobs=2, timeout=1.0).run(tasks)
        assert time.monotonic() - started < 30
        assert results[0].outcome == "timeout"
        assert "deadline" in results[0].detail
        assert results[1].outcome == "ok"

    def test_crash_does_not_sink_the_batch(self):
        tasks = [
            _task("dies", "test-crash"),
            _task("fine", "test-echo", value=3),
        ]
        results = BatchEngine(jobs=2).run(tasks)
        assert results[0].outcome == "crash"
        assert "code 3" in results[0].detail
        assert results[1].outcome == "ok"

    def test_error_is_reported_with_traceback(self):
        results = BatchEngine(jobs=1).run([_task("broken", "test-error")])
        assert results[0].outcome == "error"
        assert "ValueError" in results[0].detail
        assert "intentional test failure" in results[0].detail

    def test_unknown_kind_is_an_error_result(self):
        results = BatchEngine(jobs=1).run([_task("odd", "no-such-kind")])
        assert results[0].outcome == "error"
        assert "unknown task kind" in results[0].detail

    def test_failed_tasks_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        BatchEngine(jobs=1, timeout=0.5, cache=cache).run(
            [_task("hang", "test-sleep", seconds=60)]
        )
        assert cache.stats()["entries"] == 0

    def test_parallel_output_equals_serial_output(self):
        tasks = [
            AnalysisTask(name=name, source=source, kind="assertion")
            for name, source in DETERMINISM_PROGRAMS.items()
        ]
        serial = BatchEngine(jobs=1).run(tasks)
        parallel = BatchEngine(jobs=4).run(tasks)

        def normalize(results):
            records = []
            for result in results:
                record = result.to_dict()
                record.pop("wall_time")
                records.append(record)
            return records

        assert normalize(parallel) == normalize(serial)
        # and at least one benchmark distinguishes proved from unknown
        verdicts = {result.name: result.proved for result in serial}
        assert verdicts["inc"] is True
        assert verdicts["unprovable"] is False

    def test_summarize_batch(self):
        results = BatchEngine(jobs=2).run(
            [_task("a", "test-echo"), _task("b", "test-error")]
        )
        totals = summarize_batch(results)
        assert totals["total"] == 2
        assert totals["ok"] == 1
        assert totals["error"] == 1
        assert totals["crash"] == 0
        assert totals["cache_hits"] == 0

    def test_summarize_batch_counts_crash_separately_from_error(self):
        results = BatchEngine(jobs=2).run(
            [
                _task("a", "test-echo"),
                _task("b", "test-error"),
                _task("c", "test-crash"),
            ]
        )
        totals = summarize_batch(results)
        assert totals["total"] == 3
        assert totals["error"] == 1
        assert totals["crash"] == 1
        by_name = {result.name: result.outcome for result in results}
        assert by_name == {"a": "ok", "b": "error", "c": "crash"}


@register_kind("test-unpicklable")
def _unpicklable_runner(task, options):
    # Lambdas cannot be pickled: the worker's result send must fail, and the
    # failure must come back as this task's error, not as a crash.
    return {"bad": lambda x: x}


class _ExplodesOnLoad:
    """Pickles fine in the worker, raises while unpickling in the parent."""

    def __reduce__(self):
        return (eval, ("1/0",))


@register_kind("test-unpicklable-on-load")
def _unpicklable_on_load_runner(task, options):
    return {"bad": _ExplodesOnLoad()}


class TestSerializationFailureReporting:
    """A payload the pipe cannot carry is an *error*, never a crash."""

    def test_unserializable_payload_is_an_error_with_traceback(self):
        result = BatchEngine().run([_task("bad", "test-unpicklable")])[0]
        assert result.outcome == "error"
        assert "could not be serialized" in result.detail
        # The traceback of the failed pickle is included for debugging.
        assert "pickle" in result.detail.lower() or "Traceback" in result.detail

    def test_undeserializable_payload_is_an_error_not_a_batch_crash(self):
        # The reply deserializes badly in the *parent*; the batch must
        # neither raise nor misreport the worker as crashed.
        results = BatchEngine(jobs=2).run(
            [_task("bad", "test-unpicklable-on-load"), _task("good", "test-echo")]
        )
        by_name = {result.name: result for result in results}
        assert by_name["good"].outcome == "ok"
        assert by_name["bad"].outcome == "error"
        assert "could not be deserialized" in by_name["bad"].detail


class TestTimeoutZero:
    """``timeout=0`` is an immediate deadline, not a disabled one."""

    def test_zero_timeout_times_out(self):
        engine = BatchEngine(timeout=0)
        result = engine.run([_task("slow", "test-sleep", seconds=60)])[0]
        assert result.outcome == "timeout"
        assert "0s deadline" in result.detail
        assert result.wall_time < 30

    def test_none_timeout_still_disables_the_deadline(self):
        engine = BatchEngine(timeout=None)
        result = engine.run([_task("quick", "test-echo")])[0]
        assert result.outcome == "ok"


class TestNoSilentlyShrunkenReports:
    def test_unfilled_slot_becomes_an_explicit_error_record(self):
        class DroppingEngine(BatchEngine):
            """Simulates a result that never lands in its slot."""

            def _reap(self, running, finish):
                def dropping_finish(index, result):
                    if index != 1:
                        finish(index, result)

                super()._reap(running, dropping_finish)

        tasks = [_task(name, "test-echo") for name in ("a", "b", "c")]
        results = DroppingEngine(jobs=2).run(tasks)
        assert [result.name for result in results] == ["a", "b", "c"]
        assert results[0].outcome == results[2].outcome == "ok"
        assert results[1].outcome == "error"
        assert "no result was recorded" in results[1].detail
        totals = summarize_batch(results)
        assert totals["total"] == len(tasks)


class TestSnapshotAwareForks:
    def _warm_snapshot(self, cache):
        """Persist a memo snapshot the way a warm-pool worker would."""
        from repro.engine.cache import code_fingerprint
        from repro.polyhedra.cache import clear_caches, save_snapshot

        clear_caches(force=True)
        execute_task(
            AnalysisTask(name="warm", source=TRIVIAL, kind="assertion"),
            ChoraOptions(),
        )
        saved = save_snapshot(cache.memo_storage(), code_fingerprint())
        clear_caches(force=True)
        return saved

    def test_memo_snapshot_defaults_to_the_cache_presence(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert BatchEngine(cache=cache).memo_storage is not None
        assert BatchEngine(cache=None).memo_storage is None
        assert BatchEngine(cache=cache, memo_snapshot=False).memo_storage is None
        # Asking for the snapshot without a cache has nothing to load from.
        assert BatchEngine(cache=None, memo_snapshot=True).memo_storage is None

    def test_snapshot_fork_matches_the_cold_fork_bitwise(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert self._warm_snapshot(cache) > 0
        # "analyze" kind: a fresh cache key, so a worker actually runs.
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="analyze")
        cold = BatchEngine(cache=None).run([task])[0]
        warm = BatchEngine(cache=cache, memo_snapshot=True).run([task])[0]
        assert warm.outcome == cold.outcome == "ok"
        assert not warm.cache_hit
        assert dict(warm.payload) == dict(cold.payload)

    def test_a_broken_snapshot_store_never_sinks_the_task(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.memo_storage().write("polyhedra-memo", b"not a snapshot at all")
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        result = BatchEngine(cache=cache, memo_snapshot=True).run([task])[0]
        assert result.outcome == "ok"


class TestBatchResultRecords:
    def test_from_dict_round_trips(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        result = BatchEngine(jobs=1, cache=None).run([task])[0]
        from repro.engine import BatchResult

        rebuilt = BatchResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_from_dict_rejects_malformed_records(self):
        from repro.engine import BatchResult

        with pytest.raises(ValueError):
            BatchResult.from_dict({"name": "x"})
        with pytest.raises(ValueError):
            BatchResult.from_dict(
                {"name": "x", "kind": "analyze", "outcome": "sideways"}
            )
        with pytest.raises(ValueError):
            BatchResult.from_dict(
                {"name": "x", "kind": "analyze", "outcome": "ok", "payload": 3}
            )


class TestTaskProtocol:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        for kind in (
            "analyze",
            "assertion",
            "assertion-unrolling",
            "complexity",
            "complexity-icra",
        ):
            assert kind in kinds

    def test_execute_task_matches_worker_payload(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="assertion")
        payload = execute_task(task, ChoraOptions())
        batch = BatchEngine(jobs=1).run([task])[0]
        assert dict(batch.payload) == payload

    def test_payload_is_json_serializable(self):
        task = AnalysisTask(name="toy", source=TRIVIAL, kind="analyze")
        payload = execute_task(task, ChoraOptions())
        assert json.loads(json.dumps(payload)) == payload
        assert "summaries" in payload


class TestSuiteProtocol:
    def test_suite_shapes(self):
        assert set(SUITES) == {"table1", "fig3", "table2"}
        assert len(get_suite("table1").entries) == 12
        assert len(get_suite("fig3").entries) == 17
        assert len(get_suite("table2").entries) == 3

    def test_fast_subsets(self):
        assert len(iter_suite("table1")) == 8
        assert len(iter_suite("fig3")) == 5
        assert len(iter_suite("table2")) == 3
        assert len(iter_suite("table1", full=True)) == 12

    def test_all_sources_parse(self):
        for suite in SUITES.values():
            for entry in suite.entries:
                program = parse_program(entry.source)
                assert program.procedures, entry.name

    def test_suite_tasks_all(self):
        tasks = suite_tasks("all", full=False)
        assert len(tasks) == 8 + 5 + 3
        assert {task.suite for task in tasks} == {"table1", "fig3", "table2"}
        full = suite_tasks("all", full=True)
        assert len(full) == 12 + 17 + 3

    def test_suite_tasks_env_gating(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_BENCH", "1")
        assert len(suite_tasks("fig3")) == 17
        monkeypatch.delenv("REPRO_FULL_BENCH")
        assert len(suite_tasks("fig3")) == 5

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            suite_entry("table9", "quad")
        with pytest.raises(KeyError):
            get_suite("table2").entry("missing")

    def test_complexity_entries_carry_procedures(self):
        entry = suite_entry("table1", "subset_sum")
        assert entry.kind == "complexity"
        assert entry.procedure == "subsetSumAux"
        assert dict(entry.substitutions) == {"i": 0, "sum": 0}
