"""Unit tests for the exact rational simplex backend."""

from fractions import Fraction

from repro.formulas import Polynomial, sym
from repro.polyhedra import LinearConstraint
from repro.polyhedra.simplex import (
    exact_entails,
    exact_is_satisfiable,
    exact_maximize,
)

X = sym("x")
Y = sym("y")
PX, PY = Polynomial.var(X), Polynomial.var(Y)


def le(poly):
    return LinearConstraint.le(poly)


def eq(poly):
    return LinearConstraint.eq(poly)


class TestExactMaximize:
    def test_bounded_optimum_is_exact(self):
        # max x subject to 3x <= 1  =>  exactly 1/3
        result = exact_maximize({X: Fraction(1)}, [le(3 * PX - 1)])
        assert result.is_optimal
        assert result.value == Fraction(1, 3)

    def test_unbounded(self):
        result = exact_maximize({X: Fraction(1)}, [le(-PX)])
        assert result.is_unbounded

    def test_infeasible(self):
        result = exact_maximize({X: Fraction(1)}, [le(PX - 1), le(2 - PX)])
        assert result.is_infeasible

    def test_free_variables_both_signs(self):
        # max -x subject to x >= -5  =>  5 (x can be negative)
        result = exact_maximize({X: Fraction(-1)}, [le(-PX - 5)])
        assert result.is_optimal
        assert result.value == 5

    def test_equality_constraints(self):
        # max x + y subject to x + y = 2, x <= 1  =>  2
        result = exact_maximize(
            {X: Fraction(1), Y: Fraction(1)}, [eq(PX + PY - 2), le(PX - 1)]
        )
        assert result.is_optimal
        assert result.value == 2

    def test_two_dimensional_vertex(self):
        # max x + y s.t. x <= 3, y <= 4  =>  7
        result = exact_maximize(
            {X: Fraction(1), Y: Fraction(1)}, [le(PX - 3), le(PY - 4)]
        )
        assert result.value == 7

    def test_no_constraints_zero_objective(self):
        assert exact_maximize({}, []).value == 0

    def test_no_constraints_nonzero_objective(self):
        assert exact_maximize({X: Fraction(1)}, []).is_unbounded

    def test_degenerate_does_not_cycle(self):
        # A classic degenerate system; Bland's rule must terminate.
        constraints = [
            le(PX - PY),
            le(PY - PX),
            le(PX + PY - 1),
            le(-PX - PY),
            le(PX - 1),
            le(-PX),
        ]
        result = exact_maximize({X: Fraction(1)}, constraints)
        assert result.is_optimal
        assert result.value == Fraction(1, 2)


class TestExactSatEntails:
    def test_satisfiable(self):
        assert exact_is_satisfiable([le(PX - 10), le(-PX)])

    def test_unsatisfiable(self):
        assert not exact_is_satisfiable([le(PX - 1), le(2 - PX)])

    def test_entails_tight_large_constants(self):
        big = 1073741824
        assert exact_entails([le(PX - (big - 1))], le(PX - big))
        assert not exact_entails([le(PX - big)], le(PX - (big - 1)))

    def test_entails_equality_candidate(self):
        assert exact_entails([eq(PX - PY)], eq(2 * PX - 2 * PY))
        assert not exact_entails([le(PX - PY)], eq(PX - PY))

    def test_entails_transitivity(self):
        assert exact_entails([le(PX - PY), le(PY - 3)], le(PX - 3))

    def test_infeasible_entails_everything(self):
        assert exact_entails([le(PX - 1), le(2 - PX)], le(PX + 100))
