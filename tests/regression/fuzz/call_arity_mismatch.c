int f(int a, int b) {
    return a + b;
}

int main(int n) {
    return f(n);
}
