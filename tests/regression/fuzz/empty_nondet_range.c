int main(int n) {
    int x = nondet(0, n);
    return x;
}
