"""Replay the committed corpus of minimized fuzz findings.

Every ``.c`` file in this directory is a shrunk reproducer for a bug the
differential fuzzer (``repro fuzz``) flushed out; each test here asserts the
*fixed* behaviour, so a regression re-introducing the bug fails tier-1.

The corpus (one line of history per case):

* ``empty_nondet_range.c`` — ``nondet(0, n)`` with ``n == 0`` used to clamp
  and silently return 0, a value outside the empty range; it must block.
* ``assume_vs_assert.c`` — a failed ``assume`` used to raise the same
  exception as a failed ``assert``, so oracles miscounted blocked runs as
  counterexamples; the exceptions are now distinct.
* ``call_arity_mismatch.c`` — a call with the wrong arity used to zero-fill
  missing parameters and run a different program; it is now rejected at
  parse time (and by the interpreter for hand-built ASTs).
* ``exists_negation_assert.c`` — assertion conditions introducing auxiliary
  existential symbols (``max``, division quotients, ``nondet``) crashed the
  checker with "cannot negate an existentially quantified formula"; the
  negation now happens syntactically, before translation.
* ``negative_dividend.c`` — pins the floor-division semantics end-to-end:
  the interpreter computes ``-7 / 2 == -4`` and the relational model proves
  exactly that value (C-style truncation, ``-3``, would fail both ways).
* ``inlined_summary_name_capture.c`` — two calls to the same procedure
  inline two copies of one summary carrying identical auxiliary bound
  names; the DNF enumeration used to hoist both binders by name union,
  conflating distinct variables and "proving" a concretely-failing
  assertion; colliding bound names are now alpha-renamed.
* ``base_case_depth_regime.c`` — a call whose argument hits the base case
  immediately was made spuriously infeasible by the descent-derived depth
  constraint (valid only for recursing executions); the constraint is now
  guarded by ``H <= 1 \\/ (H >= 2 /\\ ...)`` and the caller's cost bound
  counts the callee again.
"""

from pathlib import Path

import pytest

from repro.core import ChoraOptions, analyze_program, check_assertions
from repro.lang import parse_program
from repro.lang.interp import AssertionFailure, AssumeBlocked, Interpreter
from repro.lang.parser import ParseError

CORPUS = Path(__file__).parent


def load(name: str) -> str:
    return (CORPUS / name).read_text(encoding="utf-8")


def test_corpus_is_covered():
    """Every committed reproducer has a replay test; none is dead weight."""
    covered = {
        "empty_nondet_range.c",
        "assume_vs_assert.c",
        "call_arity_mismatch.c",
        "exists_negation_assert.c",
        "negative_dividend.c",
        "inlined_summary_name_capture.c",
        "base_case_depth_regime.c",
    }
    assert {path.name for path in CORPUS.glob("*.c")} == covered


def test_empty_nondet_range_blocks():
    program = parse_program(load("empty_nondet_range.c"))
    with pytest.raises(AssumeBlocked):
        Interpreter(program).run("main", [0])
    # A non-empty range still admits values (half-open).
    assert 0 <= Interpreter(program).run("main", [2]).return_value < 2


def test_assume_blocks_without_failing():
    program = parse_program(load("assume_vs_assert.c"))
    with pytest.raises(AssumeBlocked) as blocked:
        Interpreter(program).run("main", [1])
    assert not isinstance(blocked.value, AssertionFailure)
    assert Interpreter(program).run("main", [11]).return_value == 11


def test_call_arity_mismatch_rejected_at_parse_time():
    with pytest.raises(ParseError, match="1 argument"):
        parse_program(load("call_arity_mismatch.c"))


def test_exists_in_assertion_condition_yields_a_verdict():
    program = parse_program(load("exists_negation_assert.c"))
    options = ChoraOptions()
    outcomes = check_assertions(analyze_program(program, options), options.abstraction)
    # Pre-fix this raised ValueError; the condition is falsifiable
    # (max(cost, 5) = 5 > 8/3 = 2), so the verdict must be "not proved".
    assert [outcome.proved for outcome in outcomes] == [False]


def test_inlined_summaries_keep_distinct_auxiliaries():
    from repro.baselines.unroller import check_assertions_by_unrolling

    source = load("inlined_summary_name_capture.c")
    program = parse_program(source)
    # Concrete side: f0(1) reaches the guarded assertion with r3 = 1.
    with pytest.raises(AssertionFailure):
        Interpreter(program).run("main", [1])
    # Analyser side: no sound tool proves it.  Pre-fix, the two inlined
    # copies of f0's summary shared auxiliary bound names and the DNF hoist
    # conflated them, making the guarded path spuriously infeasible.
    options = ChoraOptions()
    for depth in (2, 3):
        outcomes = check_assertions_by_unrolling(
            program, depth=depth, options=options.abstraction
        )
        assert [outcome.proved for outcome in outcomes] == [False]


def test_base_case_call_stays_feasible_outside_descent_regime():
    from repro.fuzz import OracleConfig, check_program

    source = load("base_case_depth_regime.c")
    # Concrete side: f1(-5) terminates at height 1 and costs one frame.
    cost_state = Interpreter(parse_program(source)).run("f1", [-5])
    assert cost_state.globals["cost"] == 1
    # Differential side: chora's cost claim for main must include that
    # frame (pre-fix the call was infeasible and the bound undercounted).
    report = check_program(source, OracleConfig(runs=6, baselines=False))
    assert report.violations == []
    assert report.findings == []


def test_negative_dividend_division_agrees_end_to_end():
    program = parse_program(load("negative_dividend.c"))
    # Concrete side: the interpreter floors.
    source_expr = parse_program("int main(int n) { return n / 2; }")
    assert Interpreter(source_expr).run("main", [-7]).return_value == -4
    # Analyser side: the relational model pins the same quotient.
    options = ChoraOptions()
    outcomes = check_assertions(analyze_program(program, options), options.abstraction)
    assert len(outcomes) == 3
    assert all(outcome.proved for outcome in outcomes)
