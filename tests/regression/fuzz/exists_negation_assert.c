int cost = 0;

int main(int n) {
    cost = cost + 1;
    assert(max(cost, 5) <= (8 / 3));
    return 0;
}
