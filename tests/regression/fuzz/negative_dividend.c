void main(int n) {
    assume(n == -7);
    int q = n / 2;
    assert(q == -4);
    assert(q >= -4);
    assert(q <= -4);
}
