// Minimized from fuzz seed 0, program 68 (campaign `repro fuzz --seed 0`).
//
// Concretely falsifiable: f0(1) computes r2 = f0(0) = max(0, 1) = 1 and
// r3 = f0(-1) = max(-1, 1) = 1, the guard 0 >= -r2 holds, and the
// assertion 1 > 2 fails.  The unrolling baseline nevertheless "proved" it:
// both inlined copies of f0's level-k summary carry identical auxiliary
// bound names (the `max` result, the cost counter's intermediate value),
// and the DNF enumeration hoisted both binders by name union — conflating
// the two calls' distinct auxiliaries forced r2's path and r3's path to
// agree, making the guarded path vacuously infeasible.
int cost = 0;

int f0(int n) {
    cost = cost + 1;
    if (n <= 0) {
        return max(n, 1);
    }
    int r2 = f0(n - 1);
    int r3 = f0(n - 2);
    if (0 >= (-r2)) {
        assert(r3 > 2);
    }
    return r2;
}

int main(int n) {
    int r = f0(n);
    return r;
}
