int main(int n) {
    assume(n > 10);
    return n;
}
