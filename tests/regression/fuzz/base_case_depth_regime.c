// Minimized from fuzz seed 0, programs 67 and 138 (`repro fuzz --seed 0`).
//
// f1 is called with an argument (-5) that hits its base case immediately:
// the call terminates at recursion height 1 and still costs one frame.
// The descent-derived depth constraint `1 <= H <= n` counts frames inside
// the recursive region, so it is unsatisfiable at n = -5 — conjoining it
// unconditionally made the call spuriously infeasible.  The disequality
// guard is always true at positive arguments (so every concrete run takes
// the f1 branch) but is not polyhedrally resolvable, so the analysis kept
// only the cheap else branch and claimed 2 cost units per level where the
// concrete execution pays 6.  The constraint is now guarded by the
// recursion regime: `H <= 1 \/ (H >= 2 /\ H <= n)`.
int cost = 0;

int f1(int n) {
    cost = cost + 1;
    if (n <= 1) {
        return n;
    }
    int r = f1(n - 1);
    return r;
}

int main(int n, int m) {
    cost = cost + 1;
    if (n <= 1) {
        return 0;
    }
    if ((m + 4) != (-n)) {
        f1(-5);
        cost = cost + 4;
    } else {
        cost = cost + 1;
    }
    main(n / 2, m);
    return cost;
}
