"""Property-based tests (hypothesis) for the core data structures.

These check algebraic invariants of the substrates the analysis is built on:
polynomial arithmetic, the polyhedral domain (projection and join are
over-approximations; entailment is a partial order), exponential-polynomial
closed forms, and the loop-free part of the transition-formula algebra.
"""

from fractions import Fraction

import sympy
from hypothesis import given, settings, strategies as st

from repro.formulas import Monomial, Polynomial, sym
from repro.polyhedra import LinearConstraint, Polyhedron, convex_hull_pair
from repro.recurrence import ExpPoly, geometric_convolution, solve_first_order

SYMBOLS = [sym(name) for name in ("x", "y", "z")]


@st.composite
def polynomials(draw, max_terms=4, max_degree=2):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        powers = {}
        for symbol in draw(st.lists(st.sampled_from(SYMBOLS), max_size=max_degree)):
            powers[symbol] = powers.get(symbol, 0) + 1
        coeff = Fraction(draw(st.integers(-5, 5)), draw(st.integers(1, 4)))
        mono = Monomial.from_mapping(powers)
        terms[mono] = terms.get(mono, Fraction(0)) + coeff
    return Polynomial(terms)


@st.composite
def assignments(draw):
    return {s: Fraction(draw(st.integers(-6, 6))) for s in SYMBOLS}


class TestPolynomialProperties:
    @given(polynomials(), polynomials(), assignments())
    @settings(max_examples=60, deadline=None)
    def test_addition_is_pointwise(self, p, q, env):
        assert (p + q).evaluate(env) == p.evaluate(env) + q.evaluate(env)

    @given(polynomials(), polynomials(), assignments())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_is_pointwise(self, p, q, env):
        assert (p * q).evaluate(env) == p.evaluate(env) * q.evaluate(env)

    @given(polynomials(), assignments())
    @settings(max_examples=60, deadline=None)
    def test_negation_cancels(self, p, env):
        assert (p + (-p)).is_zero or (p + (-p)).evaluate(env) == 0

    @given(polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_degree_of_product(self, p, q):
        if p.is_zero or q.is_zero:
            assert (p * q).is_zero
        else:
            assert (p * q).degree == p.degree + q.degree


def _boxes(draw_lo, draw_hi):
    x = SYMBOLS[0]
    lo, hi = sorted((draw_lo, draw_hi))
    return Polyhedron(
        [
            LinearConstraint.make({x: Fraction(-1)}, Fraction(lo)),   # x >= lo... -x + lo <= 0
            LinearConstraint.make({x: Fraction(1)}, Fraction(-hi)),   # x <= hi
        ]
    )


class TestPolyhedraProperties:
    @given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=40, deadline=None)
    def test_join_over_approximates_both(self, a, b, c, d):
        first = _boxes(a, b)
        second = _boxes(c, d)
        hull = convex_hull_pair(first, second)
        assert hull.contains(first)
        assert hull.contains(second)

    @given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-5, 5))
    @settings(max_examples=40, deadline=None)
    def test_meet_is_contained_in_both(self, a, b, shift):
        first = _boxes(a, b)
        second = _boxes(a + shift, b + shift)
        meet = first.meet(second)
        if not meet.is_empty():
            assert first.contains(meet)
            assert second.contains(meet)

    @given(st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=40, deadline=None)
    def test_projection_over_approximates(self, a, b):
        x, y = SYMBOLS[0], SYMBOLS[1]
        box = _boxes(a, b)
        tied = box.add_constraints(
            [LinearConstraint.make({y: Fraction(1), x: Fraction(-1)}, 0, )]
        )
        projected = tied.project_onto([x])
        assert projected.contains(tied.project_onto([x]))
        # Every constraint of the projection is implied by the original.
        for constraint in projected.constraints:
            assert tied.entails(constraint)


class TestRecurrenceProperties:
    @given(st.integers(1, 4), st.integers(0, 5), st.integers(-3, 3), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_first_order_closed_form_matches_iteration(self, a, g_const, v0, steps):
        closed = solve_first_order(a, ExpPoly.constant(g_const), v0, 0)
        value = sympy.Integer(v0)
        for k in range(steps + 1):
            if k >= closed.valid_from:
                assert sympy.simplify(closed.evaluate(k) - value) == 0
            value = a * value + g_const

    @given(st.integers(1, 3), st.integers(1, 4), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_convolution_matches_literal_sum(self, a, base, upto):
        g = ExpPoly.exponential(base)
        closed = geometric_convolution(a, g)
        for n in range(upto):
            literal = sum(sympy.Integer(a) ** (n - 1 - m) * base**m for m in range(n))
            assert sympy.simplify(closed.evaluate(n) - literal) == 0

    @given(st.integers(-4, 4), st.integers(-4, 4), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_exppoly_ring_laws(self, c1, c2, at):
        e1 = ExpPoly.exponential(2, c1) + ExpPoly.variable()
        e2 = ExpPoly.constant(c2)
        left = (e1 + e2).evaluate(at)
        assert sympy.simplify(left - (e1.evaluate(at) + e2.evaluate(at))) == 0
        product = (e1 * e2).evaluate(at)
        assert sympy.simplify(product - (e1.evaluate(at) * e2.evaluate(at))) == 0
